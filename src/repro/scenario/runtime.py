"""Execute one scenario task: the protocol drivers behind the DSL.

Each compiled case is a flat dict of JSON scalars; this module is the
interpreter that reconstructs the topology, arrival process and fault
model from those scalars and drives the named protocol, returning flat
numeric metrics.  Everything is a pure function of the
:class:`~repro.runner.task.TaskSpec` — the contract that lets scenario
tasks ride the cache, the process-pool workers and the fleet backend.

Worker-side resolution: scenario experiment ids carry a ``scenario:``
prefix, which :func:`repro.runner.registry.get_experiment` resolves to
the synthetic definition built by :func:`scenario_experiment`, so a
``(exp_id, spec)`` pair crosses process boundaries by name exactly like
a registered experiment's tasks.

Protocol semantics
------------------
``collection``
    Streaming convergecast: arrivals are injected per slot over the
    horizon, then the pipeline drains (bounded).  Per-message sojourns
    feed P² percentile sketches; with ``arrival = "none"`` the run is
    the classic closed workload instead.  Fault profiles run on the
    self-healing stack (``core/repair``).  ``mobility_epochs > 1``
    re-samples the topology every epoch (seed-derived), modelling
    station movement for the geometric/random families; messages still
    in flight at an epoch boundary are counted as handoff losses.
``p2p``
    Streaming point-to-point: each arrival is addressed to a
    seed-derived random destination; sojourns are measured at the
    destination station.
``broadcast``, ``tdma``, ``spatial-tdma``
    Closed runs: the arrival stream (or the ``messages``-per-source
    workload) is materialized into slot-0 submissions and the protocol
    runs to completion.
``service``, ``saturation``
    Delegated to the open-system service harness
    (:func:`repro.runner.defs.service_metrics` /
    :func:`~repro.runner.defs.sweep_metrics`) — the same cells E19/E20
    run.

Units: ``horizon_phases``, ``start_phase`` and ``end_phase`` count
Decay phases (the §4 clock); a jammer's ``jam_period``/``jam_duty``
count slots (jam windows are sub-phase phenomena).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from repro.core.collection import (
    build_collection_network,
    expected_collection_slots,
)
from repro.errors import ConfigurationError
from repro.graphs import reference_bfs_tree
from repro.graphs.graph import Graph, NodeId
from repro.analysis.sketches import P2Quantile, Welford
from repro.rng import child_rng, derive_seed
from repro.runner.registry import ExperimentDef
from repro.runner.task import TaskSpec
from repro.workloads.arrivals import (
    ArrivalProcess,
    BernoulliArrivals,
    BurstArrivals,
    PoissonArrivals,
)

#: Sojourn quantiles every latency-measuring driver reports.
SOJOURN_QUANTILES = (0.5, 0.9, 0.99)


# ----------------------------------------------------------------------
# Reconstruction helpers (case scalars -> objects)
# ----------------------------------------------------------------------

def _topology(name: str, seed: int):
    from repro.runner.defs import build_topology

    graph = build_topology(name, random.Random(seed))
    tree = reference_bfs_tree(graph, 0)
    return graph, tree


def _source_nodes(tree, mode: str) -> List[NodeId]:
    if mode == "tail":
        return [max(tree.nodes, key=lambda v: (tree.level[v], v))]
    if mode == "bottom":
        return [n for n in tree.nodes if tree.level[n] == tree.depth]
    if mode == "all":
        return [n for n in tree.nodes if n != tree.root]
    raise ConfigurationError(f"unknown source mode {mode!r}")


def _make_arrivals(
    params: Dict[str, Any],
    sources: List[NodeId],
    phase_length: int,
    seed: int,
) -> Optional[ArrivalProcess]:
    kind = params.get("arrival", "none")
    arrival_seed = derive_seed(seed, "arrivals")
    if kind == "none":
        return None
    if kind == "bernoulli":
        return BernoulliArrivals(
            sources, params["rate"], phase_length, seed=arrival_seed
        )
    if kind == "poisson":
        return PoissonArrivals.per_phase_rate(
            sources, params["rate"], phase_length, seed=arrival_seed
        )
    if kind == "burst":
        return BurstArrivals(
            sources,
            period=params["period"] * phase_length,
            bursts=params["bursts"],
            jitter=params.get("jitter", 0),
            seed=arrival_seed,
        )
    raise ConfigurationError(f"unknown arrival kind {kind!r}")


def _closed_workload(
    params: Dict[str, Any],
    sources: List[NodeId],
    phase_length: int,
    seed: int,
) -> Dict[NodeId, List[Any]]:
    """Slot-0 submissions for the closed protocol kinds."""
    arrivals = _make_arrivals(params, sources, phase_length, seed)
    if arrivals is None:
        k = params.get("messages", 4)
        return {node: [f"m{node}-{i}" for i in range(k)] for node in sources}
    horizon = params["horizon_phases"] * phase_length
    workload: Dict[NodeId, List[Any]] = {}
    for slot in range(horizon):
        for node, payload in arrivals.arrivals_at(slot):
            workload.setdefault(node, []).append(payload)
    return workload


def _make_failures(params: Dict[str, Any], graph: Graph, tree, phase_length: int, seed: int):
    kind = params.get("fault", "none")
    if kind == "none":
        return None
    fault_seed = derive_seed(seed, "faults")
    non_root = [n for n in graph.nodes if n != tree.root]
    if kind == "churn":
        from repro.radio.faults import MarkovChurn

        return MarkovChurn(
            non_root,
            fail_rate=params["fail_rate"],
            recover_rate=params["recover_rate"],
            seed=fault_seed,
        )
    if kind == "fading":
        from repro.radio.faults import GilbertElliott

        return GilbertElliott(
            p_bad=params["p_bad"],
            p_good=params["p_good"],
            loss_good=params.get("loss_good", 0.0),
            loss_bad=params.get("loss_bad", 1.0),
            seed=fault_seed,
        )
    if kind == "outage":
        from repro.radio.faults import RegionOutage

        count = max(1, int(round(params["fraction"] * len(non_root))))
        deepest_first = sorted(
            non_root, key=lambda v: (tree.level[v], v), reverse=True
        )
        return RegionOutage(
            deepest_first[:count],
            start=params.get("start_phase", 0) * phase_length,
            end=params["end_phase"] * phase_length,
        )
    if kind == "jammer":
        from repro.radio.faults import AdversarialJammer

        targets = (
            [n for n in tree.nodes if tree.level[n] == tree.depth]
            if params.get("targets", "all") == "bottom"
            else None
        )
        end_phase = params.get("end_phase")
        return AdversarialJammer(
            period=params["jam_period"],
            duty=params["jam_duty"],
            targets=targets,
            start=params.get("start_phase", 0) * phase_length,
            end=None if end_phase is None else end_phase * phase_length,
        )
    raise ConfigurationError(f"unknown fault kind {kind!r}")


# ----------------------------------------------------------------------
# KPI accumulation shared by the latency-measuring drivers
# ----------------------------------------------------------------------

class FlowAccumulator:
    """Streams per-message sojourns and per-source flow counters."""

    def __init__(self) -> None:
        self.sojourn = Welford()
        self.sketches = {p: P2Quantile(p) for p in SOJOURN_QUANTILES}
        self.submitted_by: Dict[NodeId, int] = {}
        self.delivered_by: Dict[NodeId, int] = {}
        self.submitted = 0
        self.delivered = 0
        self.measured = 0
        self.slots = 0
        self.lost = 0
        self.stats = {
            "transmissions": 0, "deliveries": 0, "collisions": 0,
            "busy_slots": 0, "dropped": 0,
        }

    def note_submitted(self, origin: NodeId) -> None:
        self.submitted += 1
        self.submitted_by[origin] = self.submitted_by.get(origin, 0) + 1

    def note_delivered(
        self, origin: NodeId, sojourn_phases: float, measured: bool
    ) -> None:
        self.delivered += 1
        self.delivered_by[origin] = self.delivered_by.get(origin, 0) + 1
        if measured:
            self.measured += 1
            self.sojourn.add(sojourn_phases)
            for sketch in self.sketches.values():
                sketch.add(sojourn_phases)

    def absorb_stats(self, stats) -> None:
        self.stats["transmissions"] += stats.transmissions
        self.stats["deliveries"] += stats.deliveries
        self.stats["collisions"] += stats.collisions
        self.stats["dropped"] += stats.dropped
        self.stats["busy_slots"] += sum(
            c.busy_slots for c in stats.per_channel.values()
        )

    def metrics(self, phase_length: int) -> Dict[str, Any]:
        phases = self.slots / phase_length if phase_length else 0.0
        out: Dict[str, Any] = {
            "submitted": self.submitted,
            "delivered": self.delivered,
            "lost": self.lost,
            "delivery_ratio": (
                self.delivered / self.submitted if self.submitted else 1.0
            ),
            "slots": self.slots,
            "phases": phases,
            "sojourn_mean_phases": (
                self.sojourn.mean if self.sojourn.count else float("nan")
            ),
            "sojourn_stddev_phases": self.sojourn.stddev,
            "jain_fairness": jain_fairness(
                [self.delivered_by.get(s, 0) for s in self.submitted_by]
            ),
            "utilization": (
                self.stats["busy_slots"] / self.slots if self.slots else 0.0
            ),
            "collision_rate": (
                self.stats["collisions"] / self.stats["transmissions"]
                if self.stats["transmissions"] else 0.0
            ),
            "transmissions": self.stats["transmissions"],
            "collisions": self.stats["collisions"],
            "dropped": self.stats["dropped"],
        }
        for p, sketch in sorted(self.sketches.items()):
            out[f"sojourn_p{int(round(p * 100))}_phases"] = sketch.value
        return out


def jain_fairness(shares: List[float]) -> float:
    """Jain's fairness index over per-flow shares: (Σx)²/(n·Σx²)."""
    if not shares:
        return 1.0
    total = float(sum(shares))
    squares = float(sum(x * x for x in shares))
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(shares) * squares)


# ----------------------------------------------------------------------
# collection (streaming / closed / faulty / mobile)
# ----------------------------------------------------------------------

def _drive_collection_epoch(
    params: Dict[str, Any],
    seed: int,
    acc: FlowAccumulator,
    horizon_phases: int,
) -> int:
    """One epoch of (possibly streaming) collection; returns phase length."""
    classes = params.get("classes", 3)
    graph, tree = _topology(params["topology"], seed)
    sources = _source_nodes(tree, params.get("sources", "tail"))
    failures = None
    fault = params.get("fault", "none")
    if fault != "none":
        from repro.core.repair import build_resilient_collection_network

        # Phase length depends only on Δ and the class count; compute it
        # from a slot structure before wiring the faulty network.
        from repro.core.slots import SlotStructure, decay_budget

        phase_length = SlotStructure(
            decay_budget(graph.max_degree()), classes, True
        ).phase_length
        failures = _make_failures(params, graph, tree, phase_length, seed)
        network, processes, slots, _registry = (
            build_resilient_collection_network(
                graph, tree, {}, seed, failures=failures,
                level_classes=classes,
            )
        )
    else:
        network, processes, slots = build_collection_network(
            graph, tree, {}, seed, level_classes=classes
        )
    network.idle_scheduling = params.get("idle_scheduling", True)
    phase_length = slots.phase_length
    root = processes[tree.root]

    arrivals = _make_arrivals(params, sources, phase_length, seed)
    in_flight: Dict[Tuple[NodeId, int], int] = {}
    warmup_slots = 0
    if arrivals is None:
        for node in sources:
            for i in range(params.get("messages", 4)):
                msg_id = processes[node].submit(f"m{node}-{i}")
                in_flight[msg_id] = 0
                acc.note_submitted(node)
        horizon_slots = 0
    else:
        horizon_slots = horizon_phases * phase_length
        warmup_slots = int(
            horizon_slots * params.get("warmup_fraction", 0.0)
        )

    def pump(now: int) -> None:
        if root.delivered:
            for message in root.delivered:
                submitted_at = in_flight.pop(message.msg_id, None)
                if submitted_at is None:
                    continue
                acc.note_delivered(
                    message.origin,
                    (now - submitted_at) / phase_length,
                    measured=submitted_at >= warmup_slots,
                )
            root.delivered.clear()

    slot = 0
    while slot < horizon_slots:
        if arrivals is not None:
            for node, payload in arrivals.arrivals_at(slot):
                msg_id = processes[node].submit(payload)
                in_flight[msg_id] = slot
                acc.note_submitted(node)
        network.step()
        pump(network.slot)
        slot += 1
    # Drain: no new arrivals; bounded by what is actually left, because
    # a faulty run may have wedged messages below a dead region (the
    # repair layer freezes buffers at stations it declares partitioned).
    drain_cap = _drain_cap(
        len(in_flight), tree.depth, graph.max_degree(), classes
    )
    drained_at = slot
    progress_at = slot
    while in_flight and slot - drained_at < drain_cap:
        if slot - progress_at >= _STALL_SLOTS:
            break  # nothing delivered for a long window: wedged for good
        before = len(in_flight)
        network.step()
        pump(network.slot)
        if len(in_flight) < before:
            progress_at = slot
        slot += 1
    acc.lost += len(in_flight)
    acc.slots += network.slot
    acc.absorb_stats(network.stats)
    return phase_length


#: Drain stall window: a drain that has delivered nothing for this many
#: slots is declared wedged (partitioned buffers never revive).
_STALL_SLOTS = 20_000


def _drain_cap(remaining: int, depth: int, max_degree: int, classes: int) -> int:
    """Slot budget to flush ``remaining`` in-flight messages.

    Ten times the Theorem 4.4 expectation for what is left, clamped: the
    floor absorbs fault-repair stalls on tiny backlogs, the ceiling
    keeps a permanently wedged message (a dead cut vertex) from turning
    the drain into an unbounded spin — leftovers count as ``lost``.
    """
    if remaining == 0:
        return 0
    return min(
        200_000,
        max(
            20_000,
            int(10 * expected_collection_slots(
                remaining, depth, max_degree, classes
            )),
        ),
    )


def _collection_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    epochs = params.get("mobility_epochs", 1)
    horizon = params.get("horizon_phases", 0)
    acc = FlowAccumulator()
    phase_length = 1
    for epoch in range(epochs):
        epoch_seed = seed if epochs == 1 else derive_seed(seed, "epoch", epoch)
        share = horizon // epochs + (1 if epoch < horizon % epochs else 0)
        phase_length = _drive_collection_epoch(params, epoch_seed, acc, share)
    metrics = acc.metrics(phase_length)
    metrics["epochs"] = epochs
    return metrics


# ----------------------------------------------------------------------
# p2p (streaming / closed)
# ----------------------------------------------------------------------

def _p2p_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    from repro.core.point_to_point import build_p2p_network, p2p_reference_slots

    graph, tree = _topology(params["topology"], seed)
    tree.assign_dfs_intervals()
    sources = _source_nodes(tree, params.get("sources", "tail"))
    network, processes, slots = build_p2p_network(
        graph, tree, seed, level_classes=params.get("classes", 3)
    )
    network.idle_scheduling = params.get("idle_scheduling", True)
    phase_length = slots.phase_length
    nodes = sorted(tree.nodes)
    dest_rng = child_rng(seed, "p2p-dest")

    acc = FlowAccumulator()
    in_flight: Dict[Tuple[NodeId, int], int] = {}
    seen: Dict[NodeId, int] = {node: 0 for node in nodes}

    def submit(origin: NodeId, payload: Any, slot: int) -> None:
        dest = origin
        while dest == origin:
            dest = nodes[dest_rng.randrange(len(nodes))]
        msg_id = processes[origin].submit(tree.dfs_number[dest], payload)
        in_flight[msg_id] = slot
        acc.note_submitted(origin)

    arrivals = _make_arrivals(params, sources, phase_length, seed)
    warmup_slots = 0
    if arrivals is None:
        for node in sources:
            for i in range(params.get("messages", 4)):
                submit(node, f"m{node}-{i}", 0)
        horizon_slots = 0
    else:
        horizon_slots = params["horizon_phases"] * phase_length
        warmup_slots = int(
            horizon_slots * params.get("warmup_fraction", 0.0)
        )

    def pump(now: int) -> None:
        for node in nodes:
            delivered = processes[node].delivered
            while seen[node] < len(delivered):
                message = delivered[seen[node]]
                seen[node] += 1
                submitted_at = in_flight.pop(message.msg_id, None)
                if submitted_at is None:
                    continue
                acc.note_delivered(
                    message.origin,
                    (now - submitted_at) / phase_length,
                    measured=submitted_at >= warmup_slots,
                )

    slot = 0
    while slot < horizon_slots:
        for node, payload in arrivals.arrivals_at(slot):
            submit(node, payload, slot)
        network.step()
        pump(network.slot)
        slot += 1
    drain_cap = _drain_cap(
        len(in_flight), tree.depth, graph.max_degree(),
        params.get("classes", 3),
    )
    drained_at = slot
    progress_at = slot
    while in_flight and slot - drained_at < drain_cap:
        if slot - progress_at >= _STALL_SLOTS:
            break
        before = len(in_flight)
        network.step()
        pump(network.slot)
        if len(in_flight) < before:
            progress_at = slot
        slot += 1
    acc.lost += len(in_flight)
    acc.slots += network.slot
    acc.absorb_stats(network.stats)
    return acc.metrics(phase_length)


# ----------------------------------------------------------------------
# closed kinds: broadcast and the deterministic baselines
# ----------------------------------------------------------------------

def _broadcast_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    from repro.core.broadcast import run_broadcast

    graph, tree = _topology(params["topology"], seed)
    sources = _source_nodes(tree, params.get("sources", "tail"))
    from repro.core.slots import SlotStructure, decay_budget

    phase_length = SlotStructure(
        decay_budget(graph.max_degree()),
        params.get("classes", 3),
        True,
    ).phase_length
    workload = _closed_workload(params, sources, phase_length, seed)
    result = run_broadcast(
        graph, tree, workload, seed,
        level_classes=params.get("classes", 3),
    )
    busy = sum(c.busy_slots for c in result.stats.per_channel.values())
    return {
        "messages": result.messages,
        "slots": result.slots,
        "superphases": result.superphases,
        "delivered_everywhere": result.delivered_everywhere,
        "resends": result.resends,
        "utilization": busy / result.slots if result.slots else 0.0,
        "collision_rate": (
            result.stats.collisions / result.stats.transmissions
            if result.stats.transmissions else 0.0
        ),
        "transmissions": result.stats.transmissions,
        "collisions": result.stats.collisions,
    }


def _tdma_task(
    params: Dict[str, Any], seed: int, spatial: bool
) -> Dict[str, Any]:
    graph, tree = _topology(params["topology"], seed)
    sources = _source_nodes(tree, params.get("sources", "tail"))
    from repro.core.slots import SlotStructure, decay_budget

    phase_length = SlotStructure(
        decay_budget(graph.max_degree()), 3, True
    ).phase_length
    workload = _closed_workload(params, sources, phase_length, seed)
    if not workload:
        workload = {sources[0]: ["m0"]}
    if spatial:
        from repro.baselines.spatial_tdma import run_spatial_tdma_collection

        result = run_spatial_tdma_collection(graph, tree, workload)
        frame_length = result.frame_length
    else:
        from repro.baselines.tdma import run_tdma_collection

        result = run_tdma_collection(graph, tree, workload)
        frame_length = graph.num_nodes
    submitted = sum(len(v) for v in workload.values())
    busy = sum(c.busy_slots for c in result.stats.per_channel.values())
    return {
        "submitted": submitted,
        "delivered": len(result.delivered),
        "delivery_ratio": (
            len(result.delivered) / submitted if submitted else 1.0
        ),
        "slots": result.slots,
        "frames": result.frames,
        "frame_length": frame_length,
        "utilization": busy / result.slots if result.slots else 0.0,
        "collision_rate": 0.0,  # TDMA is collision-free by construction
        "transmissions": result.stats.transmissions,
    }


# ----------------------------------------------------------------------
# open-system kinds (delegated to the service harness)
# ----------------------------------------------------------------------

def _service_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    from repro.runner.defs import service_metrics

    return service_metrics(
        params["topology"], params.get("sources", "tail"),
        params["arrival"], params["rate"], params["horizon_phases"], seed,
    )


def _saturation_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    from repro.runner.defs import sweep_metrics

    return sweep_metrics(
        params["topology"], params.get("sources", "tail"),
        params["points"], params["horizon_phases"], seed,
    )


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------

def run_scenario_task(spec: TaskSpec) -> Dict[str, Any]:
    """Execute one scenario task (worker entry point, pure in ``spec``)."""
    params = spec.params
    kind = params.get("protocol")
    if kind == "collection":
        return _collection_task(params, spec.seed)
    if kind == "p2p":
        return _p2p_task(params, spec.seed)
    if kind == "broadcast":
        return _broadcast_task(params, spec.seed)
    if kind == "tdma":
        return _tdma_task(params, spec.seed, spatial=False)
    if kind == "spatial-tdma":
        return _tdma_task(params, spec.seed, spatial=True)
    if kind == "service":
        return _service_task(params, spec.seed)
    if kind == "saturation":
        return _saturation_task(params, spec.seed)
    raise ConfigurationError(
        f"task {spec.label()} has no protocol kind (corrupt case?)"
    )


#: Scalar-only diagnostics the lockstep engine cannot observe (it has
#: no per-channel stats object); the batch path reports the honest
#: subset rather than zeros masquerading as measurements.
_SCALAR_ONLY_METRICS = (
    "utilization", "collision_rate", "transmissions", "collisions",
    "dropped",
)


def run_scenario_batch(specs: List[TaskSpec]) -> List[Dict[str, Any]]:
    """Execute same-case scenario tasks in one lockstep batch.

    The vector-engine entry point for scenario experiments: every task
    of a (sub-)batch shares one compiled case, so the whole group runs
    as one :func:`~repro.vector.collection.run_collection_batch` call —
    all replications advancing in NumPy lockstep.  Only the shape the
    lockstep engine simulates is accepted (closed, fault-free, single-
    epoch collection); the spec cross-field checks reject anything else
    at validation time, so the guard here is a corruption tripwire, not
    a user-facing error path.

    Seed-dependent topology families realize a different graph per
    seed, so tasks are bucketed by the graph they realize (exactly as
    :func:`repro.runner.defs.collection_metrics_batch` does) and each
    bucket runs as one batch.  Metrics mirror the scalar closed-run
    path — same submission order, sojourns in phases from the delivery
    slot — except the per-channel diagnostics the lockstep engine does
    not observe, which are omitted rather than fabricated.
    """
    from repro.vector.collection import run_collection_batch

    results: List[Dict[str, Any]] = [{} for _ in specs]
    grouped: Dict[tuple, List[int]] = {}
    for index, spec in enumerate(specs):
        params = spec.params
        if (
            params.get("protocol") != "collection"
            or params.get("fault", "none") != "none"
            or params.get("arrival", "none") != "none"
            or params.get("mobility_epochs", 1) > 1
        ):
            raise ConfigurationError(
                f"task {spec.label()} is not a closed fault-free "
                "collection case; the vector engine cannot batch it "
                "(the spec validator should have rejected this scenario)"
            )
        # The engine knobs join the cell key: reception/backend are
        # bit-identical but one batch call uses one kernel set, and the
        # mask changes coin-stream semantics outright.
        cell = (
            params["topology"], params.get("sources", "tail"),
            params.get("messages", 4), params.get("classes", 3),
            spec.reception, spec.backend, spec.mask,
        )
        grouped.setdefault(cell, []).append(index)

    for cell, indices in grouped.items():
        topology, source_mode, messages, classes = cell[:4]
        reception, backend, mask = cell[4:]
        buckets: Dict[Graph, List[int]] = {}
        trees: Dict[Graph, Any] = {}
        for index in indices:
            graph, tree = _topology(topology, specs[index].seed)
            buckets.setdefault(graph, []).append(index)
            trees.setdefault(graph, tree)
        for graph, positions in buckets.items():
            tree = trees[graph]
            sources = _source_nodes(tree, source_mode)
            workload = {
                node: [f"m{node}-{i}" for i in range(messages)]
                for node in sources
            }
            batch = run_collection_batch(
                graph,
                tree,
                workload,
                [specs[index].seed for index in positions],
                level_classes=classes,
                reception=reception,
                backend=backend,
                mask=mask,
            )
            simulation = batch.simulation
            phase_length = simulation.phase_length
            origins = simulation.message_origins
            delivered = simulation.delivered_slots()
            for b, index in enumerate(positions):
                acc = FlowAccumulator()
                # Same submission order as the scalar closed path, so
                # jain_fairness iterates flows identically.
                for node in sources:
                    for _ in range(messages):
                        acc.note_submitted(node)
                for slot, gid in delivered[b]:
                    # Closed runs have no warmup: every sojourn counts.
                    acc.note_delivered(
                        origins[gid], slot / phase_length, measured=True
                    )
                acc.slots = int(batch.completion_slots[b])
                metrics = acc.metrics(phase_length)
                for name in _SCALAR_ONLY_METRICS:
                    metrics.pop(name, None)
                metrics["epochs"] = 1
                results[index] = metrics
    return results


def _no_grid(seed: int, replications: int, **options: Any):
    raise ConfigurationError(
        "scenario experiments are compiled from spec files; use "
        "'python -m repro scenario <file>' (the registry cannot expand "
        "their grids)"
    )


def scenario_experiment(exp_id: str) -> ExperimentDef:
    """Synthetic :class:`ExperimentDef` for a ``scenario:`` experiment id.

    Built on demand by the registry so worker processes (and the fleet
    backend) resolve scenario tasks by name, with the task function
    shared across every scenario — the case carries all semantics.
    """
    parts = exp_id.split(":")
    name = parts[1] if len(parts) > 1 and parts[1] else exp_id
    return ExperimentDef(
        exp_id=exp_id,
        title=f"declarative scenario {name!r}",
        make_tasks=_no_grid,
        run_task=run_scenario_task,
        run_batch=run_scenario_batch,
        summary_metrics=(),
        default_timeout=600.0,
    )
