"""Fold per-task metric records into one flat KPI report.

The input is the telemetry record shape (``{"spec": ..., "metrics": ...,
"wall_time": ..., "cached": ...}``) — produced identically by
``telemetry.jsonl`` on disk and by an in-memory
:class:`~repro.runner.executor.RunReport` — so the same post-pass works
on a live run and on an archived one.

Aggregation rules
-----------------
Counters pool by summation before ratios are formed (a delivery ratio
is ``Σ delivered / Σ submitted``, never a mean of per-task ratios — the
latter over-weights idle tasks).  Utilization pools slot-weighted.
Latency percentiles pool the per-task P² estimates weighted by each
task's measured sample count: each driver already streams its sojourns
through a P² sketch (:mod:`repro.analysis.sketches`), so the post-pass
combines sketch outputs rather than re-reading raw samples — the whole
pipeline stays constant-memory in the number of messages.  Per-metric
distributions across tasks use Welford + P² sketches directly.

The report is a flat JSON object: every top-level value is a scalar
(plus two nested breakdown tables), so ``benchmarks/check_regression.py``
can gate any KPI by naming its key.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.sketches import P2Quantile, Welford
from repro.errors import ConfigurationError

#: Sojourn quantiles reported when the records carry latency sketches.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

#: Flow counters pooled by summation across tasks.
_POOLED_COUNTERS = (
    "submitted", "delivered", "lost", "transmissions", "collisions",
    "dropped", "slots",
)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _finite(value: Any) -> Optional[float]:
    """The value as a float when it is a usable number, else None."""
    if not _is_number(value):
        return None
    value = float(value)
    return value if math.isfinite(value) else None


def _case_label(spec: Mapping[str, Any]) -> str:
    case = spec.get("case", {})
    if not case:
        return str(spec.get("exp_id", "?"))
    return ",".join(f"{k}={case[k]}" for k in sorted(case))


def _quantile_key(q: float) -> str:
    return f"p{int(round(q * 100))}"


def compute_kpis(
    records: Sequence[Mapping[str, Any]],
    *,
    scenario: Optional[str] = None,
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
) -> Dict[str, Any]:
    """Fold task records into the scenario's KPI report (a flat dict)."""
    if not records:
        raise ConfigurationError("no task records to compute KPIs from")

    totals = {name: 0.0 for name in _POOLED_COUNTERS}
    totals_seen = {name: False for name in _POOLED_COUNTERS}
    util_slots = 0.0      # Σ utilization · slots
    util_weight = 0.0     # Σ slots over tasks that reported utilization
    latency_sum = {_quantile_key(q): 0.0 for q in quantiles}
    latency_weight = {_quantile_key(q): 0.0 for q in quantiles}
    latency_mean_sum = 0.0
    latency_mean_weight = 0.0
    jain = Welford()
    wall = Welford()
    wall_sketch = P2Quantile(0.9)
    per_metric: Dict[str, Welford] = {}
    per_case: Dict[str, Dict[str, Welford]] = {}
    cached = 0
    exp_ids: List[str] = []

    for record in records:
        spec = record.get("spec", {})
        metrics = record.get("metrics", {})
        exp_id = str(spec.get("exp_id", "?"))
        if exp_id not in exp_ids:
            exp_ids.append(exp_id)
        if record.get("cached"):
            cached += 1
        wall_time = _finite(record.get("wall_time"))
        if wall_time is not None:
            wall.add(wall_time)
            wall_sketch.add(wall_time)

        for name in _POOLED_COUNTERS:
            value = _finite(metrics.get(name))
            if value is not None:
                totals[name] += value
                totals_seen[name] = True

        slots = _finite(metrics.get("slots")) or 0.0
        utilization = _finite(metrics.get("utilization"))
        if utilization is not None and slots > 0:
            util_slots += utilization * slots
            util_weight += slots

        # Weight each task's P² estimate by its measured sample count
        # (fall back to delivered, then to 1, so sketchless tasks still
        # pool sanely).
        weight = (
            _finite(metrics.get("measured"))
            or _finite(metrics.get("delivered"))
            or 1.0
        )
        for q in quantiles:
            key = _quantile_key(q)
            estimate = _finite(metrics.get(f"sojourn_{key}_phases"))
            if estimate is not None:
                latency_sum[key] += estimate * weight
                latency_weight[key] += weight
        mean_estimate = _finite(metrics.get("sojourn_mean_phases"))
        if mean_estimate is not None:
            latency_mean_sum += mean_estimate * weight
            latency_mean_weight += weight

        fairness = _finite(metrics.get("jain_fairness"))
        if fairness is not None:
            jain.add(fairness)

        label = _case_label(spec)
        case_stats = per_case.setdefault(label, {})
        for name, raw in metrics.items():
            value = _finite(raw) if not isinstance(raw, bool) else float(raw)
            if value is None:
                continue
            per_metric.setdefault(name, Welford()).add(value)
            case_stats.setdefault(name, Welford()).add(value)

    report: Dict[str, Any] = {
        "scenario": scenario or (exp_ids[0] if len(exp_ids) == 1 else None),
        "experiments": exp_ids,
        "tasks": len(records),
        "cases": len(per_case),
        "cached_tasks": cached,
        "cache_hit_rate": cached / len(records),
        "wall_time_total": wall.count * wall.mean if wall.count else 0.0,
        "wall_time_mean": wall.mean if wall.count else 0.0,
        "wall_time_p90": wall_sketch.value if wall.count else 0.0,
    }

    for name in _POOLED_COUNTERS:
        if totals_seen[name]:
            report[name] = totals[name]
    if totals_seen["submitted"]:
        report["delivery_ratio"] = (
            totals["delivered"] / totals["submitted"]
            if totals["submitted"] else 1.0
        )
    if totals_seen["transmissions"]:
        report["collision_rate"] = (
            totals["collisions"] / totals["transmissions"]
            if totals["transmissions"] else 0.0
        )
    if util_weight > 0:
        report["utilization"] = util_slots / util_weight
    for q in quantiles:
        key = _quantile_key(q)
        if latency_weight[key] > 0:
            report[f"latency_{key}_phases"] = (
                latency_sum[key] / latency_weight[key]
            )
    if latency_mean_weight > 0:
        report["latency_mean_phases"] = (
            latency_mean_sum / latency_mean_weight
        )
    if jain.count:
        report["jain_fairness"] = jain.mean

    report["per_metric"] = {
        name: {
            "mean": stats.mean,
            "stddev": stats.stddev,
            "count": stats.count,
        }
        for name, stats in sorted(per_metric.items())
    }
    report["per_case"] = {
        label: {
            name: stats.mean for name, stats in sorted(case_stats.items())
        }
        for label, case_stats in sorted(per_case.items())
    }
    return report


def kpis_from_report(
    report: Any,
    *,
    scenario: Optional[str] = None,
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
) -> Dict[str, Any]:
    """KPIs straight from a :class:`RunReport` (no run directory needed)."""
    records = [
        {
            "spec": outcome.spec.to_record(),
            "metrics": dict(outcome.metrics),
            "wall_time": outcome.wall_time,
            "cached": outcome.cached,
            "key": outcome.key,
        }
        for outcome in report.outcomes
    ]
    return compute_kpis(records, scenario=scenario, quantiles=quantiles)


def kpis_from_run_dir(
    run_dir: Any,
    *,
    scenario: Optional[str] = None,
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
) -> Dict[str, Any]:
    """KPIs from a run directory's ``telemetry.jsonl`` (deduplicated)."""
    from repro.runner.telemetry import merge_task_records, read_telemetry

    records, _ = merge_task_records(read_telemetry(run_dir))
    return compute_kpis(records, scenario=scenario, quantiles=quantiles)


def kpi_filename(scenario: str) -> str:
    """``KPI_<scenario>.json`` with the name sanitized for filesystems."""
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", scenario).strip("_") or "report"
    return f"KPI_{safe}.json"


def write_kpi_report(
    kpis: Mapping[str, Any], out: Any
) -> Path:
    """Write the KPI report as JSON; ``out`` is a file or a directory.

    A directory target gets the canonical ``KPI_<scenario>.json`` name.
    Returns the path written.
    """
    path = Path(out)
    if path.is_dir() or not path.suffix:
        path = path / kpi_filename(str(kpis.get("scenario") or "report"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(kpis, indent=2, sort_keys=True) + "\n")
    return path
