"""KPI post-processing: telemetry records → one flat KPI report.

A scenario run leaves a trail of per-task metric records (in the
:class:`~repro.runner.executor.RunReport` and, when a run directory was
given, in ``telemetry.jsonl``).  This package is the post-pass that
folds those records into the scenario's key performance indicators —
delivery ratio, per-flow latency percentiles, air-time utilization,
collision rate, Jain fairness — using the same constant-memory sketches
(:mod:`repro.analysis.sketches`) the streaming drivers use, and writes
them as ``KPI_<scenario>.json``: a flat JSON object whose top-level
scalars are directly consumable by ``benchmarks/check_regression.py``.
"""

from repro.kpi.processor import (
    compute_kpis,
    kpi_filename,
    kpis_from_report,
    kpis_from_run_dir,
    write_kpi_report,
)

__all__ = [
    "compute_kpis",
    "kpi_filename",
    "kpis_from_report",
    "kpis_from_run_dir",
    "write_kpi_report",
]
