"""E15 — the §4 stability threshold, live: offered load vs sojourn time.

The queueing analysis predicts the radio collection pipeline behaves like
a tandem of Bernoulli servers: with per-phase arrival rate λ below the
per-phase service rate, sojourn times are bounded (`E(T) =
(1−λ)/(µ_eff−λ)` per busy level); as λ approaches the service rate the
latency blows up — the knee every queueing system has at ρ → 1.

Two regimes demonstrate it:

* a single source on a deep path CANNOT saturate (its max arrival rate,
  one per phase, equals the uncontended hop service rate): sojourn stays
  pinned at ≈ D phases for every λ — the flat line;
* the layered band (every hop contended) has effective service < 1 per
  phase and shows the blow-up as λ grows.

We stream Bernoulli(λ)-per-phase arrivals into a deep path's tail for a
long horizon and measure the mean sojourn (in phases).  The empirical
per-phase service rate of an uncontended path hop is close to 1 (a lone
transmitter succeeds in its first Decay slot; only the source's ack
round-trip throttles it at ~1 message per phase), so the knee sits near
λ ≈ 1 rather than at the worst-case µ ≈ 0.23 — the same headroom between
measured behaviour and the µ-based bound that E3/E4 exhibit.  On the
contended layered band the effective service rate drops and the knee
moves left, toward the analysis's regime.
"""

from conftest import replication_seeds

from repro.analysis import print_table, summarize
from repro.core.slots import SlotStructure, decay_budget
from repro.graphs import layered_band, path, reference_bfs_tree
from repro.workloads import BernoulliArrivals, run_streaming_collection


def measure_sojourn(graph, tree, sources, rate, seed, phases=260):
    phase_length = SlotStructure(
        decay_budget(graph.max_degree()), 3, True
    ).phase_length
    arrivals = BernoulliArrivals(
        sources=sources,
        rate=rate,
        phase_length=phase_length,
        seed=seed ^ 0xBEEF,
    )
    result = run_streaming_collection(
        graph,
        tree,
        arrivals,
        seed=seed,
        horizon_slots=phases * phase_length,
        drain=True,
        drain_budget=4_000 * phase_length,
    )
    if result.submitted == 0:
        return None
    return result.mean_latency_phases(phase_length)


def test_e15_offered_load_vs_latency(benchmark):
    rows = []
    scenarios = [
        ("path-12 tail", path(12), lambda tree: [11]),
        (
            "band-4x4 bottom",
            layered_band(4, 4),
            lambda tree: [
                n for n in tree.nodes if tree.level[n] == tree.depth
            ],
        ),
    ]
    knees = {}
    for name, graph, pick_sources in scenarios:
        tree = reference_bfs_tree(graph, 0)
        sources = pick_sources(tree)
        latencies = {}
        for rate in (0.05, 0.2, 0.5, 0.8):
            samples = []
            for seed in replication_seeds(f"e15-{name}-{rate}", 3):
                value = measure_sojourn(graph, tree, sources, rate, seed)
                if value is not None:
                    samples.append(value)
            latencies[rate] = summarize(samples).mean
            rows.append([name, rate, len(sources), latencies[rate]])
        knees[name] = latencies
    print_table(
        ["scenario", "λ/phase/source", "sources", "sojourn (phases)"],
        rows,
        title="E15: streamed collection — sojourn time vs offered load",
    )
    # The uncontended single-source path *cannot* saturate: its per-hop
    # service rate matches the maximum per-source arrival rate (one per
    # phase), so sojourn stays pinned at ≈ D phases for every λ.
    path_lat = knees["path-12 tail"]
    assert max(path_lat.values()) < 1.5 * min(path_lat.values())
    # The contended band has an effective service rate < 1 per phase and
    # exhibits the queueing knee: sojourn explodes as λ grows.
    band_lat = knees["band-4x4 bottom"]
    assert band_lat[0.2] > band_lat[0.05]
    assert band_lat[0.8] > 10 * band_lat[0.05]
    assert band_lat[0.8] > 2 * path_lat[0.8]

    graph = path(8)
    tree = reference_bfs_tree(graph, 0)
    benchmark(
        lambda: measure_sojourn(graph, tree, [7], 0.2, seed=4, phases=60)
    )
