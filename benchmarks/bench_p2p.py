"""E7 — §5: k point-to-point transmissions in O((k + D)·log Δ) slots,
i.e. steady-state throughput of one new transmission every O(log Δ) slots.

Sweeps k over random source/destination pairs and reports total slots, the
normalized constant slots/((k+D)·log Δ), and the *marginal* cost per extra
message (the finite-difference slope in k), which should be O(log Δ) and
in particular independent of D once the pipeline is full.
"""

import math
import random

from conftest import replication_seeds

from repro.analysis import print_table, summarize
from repro.core import run_point_to_point
from repro.graphs import grid, path, random_geometric, reference_bfs_tree


def prepared(build, seed):
    graph = build(random.Random(seed))
    tree = reference_bfs_tree(graph, 0)
    tree.assign_dfs_intervals()
    return graph, tree


def random_pairs(graph, k, rng):
    nodes = list(graph.nodes)
    out = []
    while len(out) < k:
        u, v = rng.choice(nodes), rng.choice(nodes)
        if u != v:
            out.append((u, v, len(out)))
    return out


def mean_slots(build, k, name):
    samples = []
    for seed in replication_seeds(name, 4):
        graph, tree = prepared(build, seed)
        batch = random_pairs(graph, k, random.Random(seed ^ 0xABCD))
        result = run_point_to_point(graph, tree, batch, seed=seed)
        samples.append(float(result.slots))
    return summarize(samples).mean


def test_e7_p2p_throughput(benchmark):
    rows = []
    scenarios = [
        ("path-16", lambda r: path(16)),
        ("grid-5x5", lambda r: grid(5, 5)),
        ("rgg-30", lambda r: random_geometric(30, 0.3, r)),
    ]
    for name, build in scenarios:
        graph, tree = prepared(build, 0)
        log_delta = math.log2(max(2, graph.max_degree()))
        means = {}
        for k in (4, 8, 16, 32):
            means[k] = mean_slots(build, k, f"e7-{name}-{k}")
            constant = means[k] / ((k + tree.depth) * log_delta)
            rows.append([name, k, tree.depth, means[k], constant])
        marginal = (means[32] - means[8]) / (32 - 8)
        rows.append(
            [name, "Δk 8→32", "-", "-", marginal / log_delta]
        )
        # Marginal cost per message is a small multiple of log Δ — the
        # "new transmission every O(log Δ) slots" claim; the ×3 level
        # classes and ×2 acks make ~up-to-40·logΔ a generous envelope.
        assert marginal <= 40 * log_delta, (name, marginal, log_delta)
    print_table(
        ["topology", "k", "D", "slots (mean)", "slots/((k+D)logΔ) | marg/logΔ"],
        rows,
        title="E7: point-to-point batch cost and marginal per-message cost",
    )
    graph, tree = prepared(lambda r: grid(4, 4), 1)
    batch = random_pairs(graph, 6, random.Random(7))
    benchmark(
        lambda: run_point_to_point(graph, tree, batch, seed=3).slots
    )
