"""E1 — Decay property (2): a contended receiver hears something w.p. ≥ 1/2.

Reproduces the guarantee underlying every protocol in the paper: for any
number of transmitting neighbors m ≤ Δ, one window-aligned Decay
invocation of ``2·ceil(log2 Δ)`` slots delivers *some* message to the
receiver with probability ≥ 1/2.

Three independent measurements per (Δ, m) point: the exact DP closed form,
a direct Monte-Carlo of the coin flips, and a full radio-engine simulation
of the star — all three must agree, and all must clear 1/2.
"""

import random

from conftest import ROOT_SEED

from repro.analysis import print_table
from repro.core import (
    DecayTransmitter,
    decay_budget,
    simulate_star_reception,
    success_probability_exact,
)
from repro.graphs import star
from repro.radio import RadioNetwork, SilentProcess


def engine_star_estimate(m: int, budget: int, seed: int, trials: int) -> float:
    successes = 0
    for trial in range(trials):
        graph = star(m + 1)
        net = RadioNetwork(graph)
        center = SilentProcess(0)
        net.attach(center)
        for leaf in range(1, m + 1):
            net.attach(
                DecayTransmitter(
                    leaf,
                    payload=leaf,
                    budget=budget,
                    rng=random.Random(seed + trial * 1000 + leaf),
                )
            )
        net.run(budget)
        if center.heard:
            successes += 1
    return successes / trials


def test_e1_decay_success_probability(benchmark):
    rows = []
    for max_degree in (4, 16, 64):
        budget = decay_budget(max_degree)
        for m in sorted({2, max_degree // 2, max_degree}):
            if m < 1:
                continue
            exact = float(success_probability_exact(m, budget))
            monte_carlo = simulate_star_reception(
                m, budget, random.Random(ROOT_SEED + m), trials=30_000
            )
            engine = engine_star_estimate(
                m, budget, seed=ROOT_SEED, trials=800
            )
            rows.append(
                [max_degree, budget, m, exact, monte_carlo, engine]
            )
            assert exact >= 0.5, (max_degree, m)
            assert abs(monte_carlo - exact) < 0.03
            assert abs(engine - exact) < 0.06
    print_table(
        ["Δ", "2·log Δ", "m senders", "P exact", "P monte-carlo", "P engine"],
        rows,
        title="E1: Decay property (2) — receiver hears some message (≥ 0.5)",
    )
    benchmark(
        lambda: simulate_star_reception(
            8, decay_budget(16), random.Random(1), trials=2_000
        )
    )
