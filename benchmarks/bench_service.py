"""E19/E20 — open-system service mode: oracle agreement, knee, memory.

Three claims, one bench file:

* **E19** (oracle agreement): streaming KPIs measured in the open
  system track the §4 Geo/Geo/1 tandem closed forms — on the
  uncontended single-source path within 35%, and the drift test reads
  every below-knee cell as stable.
* **E20** (stability knee): the saturation sweep's detected knee
  brackets the analytic critical rate µ_eff/|sources| on the contended
  band.
* **SERVICE** (constant memory, the regression-gated figure): the
  service loop retains no per-message state, so at an identical
  horizon its peak allocations undercut the record-retaining streaming
  driver by ``mem_ratio`` (gated in floors.json), and tripling the
  horizon leaves its peak essentially unchanged.
"""

import json
import time
import tracemalloc

from conftest import ROOT_SEED, bench_results_dir, run_experiment_for_bench

from repro.core.slots import SlotStructure, decay_budget
from repro.graphs import layered_band, reference_bfs_tree
from repro.rng import derive_seed
from repro.service import run_service
from repro.workloads import BernoulliArrivals, run_streaming_collection

#: The memory cell: contended band, all bottom sensors, moderate load.
LAYERS, WIDTH = 4, 3
RATE = 0.15
#: Long enough that the bounded dedup windows and estimator state have
#: reached steady state well before the 1x horizon ends (the constant-
#: memory claim is about the plateau, not the fill-up transient).
PHASES = 1800


def _cell():
    graph = layered_band(LAYERS, WIDTH)
    tree = reference_bfs_tree(graph, 0)
    sources = [n for n in tree.nodes if tree.level[n] == tree.depth]
    phase_length = SlotStructure(
        decay_budget(graph.max_degree()), 3, True
    ).phase_length
    return graph, tree, sources, phase_length


def _arrivals(sources, phase_length, seed):
    return BernoulliArrivals(
        sources, RATE, phase_length, seed=derive_seed(seed, "arrivals")
    )


def _service_peak(phases, seed):
    graph, tree, sources, phase_length = _cell()
    tracemalloc.start()
    try:
        kpis = run_service(
            graph, tree, _arrivals(sources, phase_length, seed),
            seed=seed, horizon_slots=phases * phase_length,
        )
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak, kpis


def _retaining_peak(phases, seed):
    graph, tree, sources, phase_length = _cell()
    tracemalloc.start()
    try:
        result = run_streaming_collection(
            graph, tree, _arrivals(sources, phase_length, seed),
            seed=seed, horizon_slots=phases * phase_length, drain=False,
        )
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak, result


def test_service_constant_memory(benchmark):
    seed = derive_seed(ROOT_SEED, "bench-service")
    _service_peak(60, seed)  # warm imports/caches off the measurements

    peak_1x, kpis_1x = _service_peak(PHASES, seed)
    peak_3x, kpis_3x = _service_peak(3 * PHASES, seed)
    growth = peak_3x / peak_1x
    peak_retained, retained = _retaining_peak(PHASES, seed)
    mem_ratio = peak_retained / peak_1x

    # Same workload on both sides of the memory comparison.
    assert retained.submitted == kpis_1x.submitted
    assert kpis_3x.submitted > 2 * kpis_1x.submitted

    graph, tree, sources, phase_length = _cell()
    started = time.perf_counter()
    run_service(
        graph, tree, _arrivals(sources, phase_length, seed),
        seed=seed, horizon_slots=PHASES * phase_length,
    )
    seconds = time.perf_counter() - started
    slots_per_second = PHASES * phase_length / seconds

    summary = {
        "experiment": "SERVICE",
        "title": "open-system service loop: constant-memory streaming KPIs",
        "cell": {
            "topology": f"band-{LAYERS}x{WIDTH}",
            "sources": len(sources),
            "rate_per_phase": RATE,
            "phases": PHASES,
            "seed": ROOT_SEED,
        },
        "peak_service_bytes": peak_1x,
        "peak_service_3x_bytes": peak_3x,
        "horizon_growth": round(growth, 3),
        "peak_retaining_bytes": peak_retained,
        "mem_ratio": round(mem_ratio, 2),
        "slots_per_second": round(slots_per_second, 1),
    }
    out = bench_results_dir() / "BENCH_SERVICE.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(summary, indent=2) + "\n")
    print(
        f"\nSERVICE: peak {peak_1x / 1024:.0f} KiB flat "
        f"({growth:.2f}x at 3x horizon) vs {peak_retained / 1024:.0f} KiB "
        f"retaining ({mem_ratio:.1f}x) at {slots_per_second:,.0f} "
        f"slots/s -> {out}"
    )
    # The acceptance criterion: peak memory independent of the horizon.
    assert growth < 1.3, (
        f"service peak grew {growth:.2f}x when the horizon tripled"
    )
    assert mem_ratio > 1.5, (
        f"service loop saved only {mem_ratio:.2f}x over the "
        "record-retaining driver"
    )

    benchmark(
        lambda: run_service(
            graph, tree, _arrivals(sources, phase_length, seed),
            seed=seed, horizon_slots=120 * phase_length,
        )
    )


def test_e19_open_system_kpis_vs_oracle(benchmark):
    report = run_experiment_for_bench("E19", replications=3)
    by_case = {}
    for outcome in report.outcomes:
        key = (
            outcome.spec.params["topology"],
            outcome.spec.params["arrival"],
        )
        by_case.setdefault(key, []).append(outcome.metrics)
    for (topology, arrival), rows in sorted(by_case.items()):
        ratio = sum(r["sojourn_ratio"] for r in rows) / len(rows)
        print(f"E19 {topology}/{arrival}: sojourn_ratio {ratio:.2f}")
        assert all(r["stable"] for r in rows)
        # The single-source path is the clean tandem: tight agreement.
        # Multi-source contended cells overlap service across levels, so
        # the serialized-tandem prediction is an upper bound (documented
        # tolerance: ratio in [0.3, 1.35]).
        if topology.startswith("path"):
            assert 0.65 <= ratio <= 1.35
        else:
            assert 0.3 <= ratio <= 1.35
    benchmark(
        lambda: run_experiment_for_bench("E19", replications=1, quick=True)
    )


def test_e20_knee_brackets_critical_rate(benchmark):
    report = run_experiment_for_bench("E20", replications=3)
    for outcome in report.outcomes:
        metrics = outcome.metrics
        assert metrics["knee_found"], outcome.spec.params
        assert metrics["knee_brackets_critical"], {
            **outcome.spec.params,
            "knee": (metrics["knee_low"], metrics["knee_high"]),
            "critical": metrics["critical_rate_per_source"],
        }
    print(
        f"E20: {len(report.outcomes)} sweeps, every knee brackets its "
        "analytic critical rate"
    )
    benchmark(
        lambda: run_experiment_for_bench("E20", replications=1, quick=True)
    )
