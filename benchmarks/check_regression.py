"""Regression gate for the benchmark summaries.

Compares freshly produced ``benchmarks/results/BENCH_*.json`` summaries
against the committed baselines in ``benchmarks/floors.json`` and fails
(exit 1) when any measured figure fell more than the tolerated fraction
below its baseline — the committed default tolerates a 20% dip, which
absorbs runner-to-runner jitter while still catching a kernel that
silently degraded.

Each baseline entry names the summary key it gates with ``metric``
(default ``speedup``); the baseline value lives under that same key.
All gated metrics are bigger-is-better ratios (engine speedups, the
service mode's memory-saving ratio), so one floor rule covers them.

Usage (after running the benchmarks that write the summaries)::

    python benchmarks/check_regression.py [--results-dir DIR] [--only EXP ...]

Missing result files are an error unless the experiment is excluded with
``--only``: a gate that silently skips an absent benchmark is no gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
FLOORS = HERE / "floors.json"


def default_results_dir() -> Path:
    override = os.environ.get("REPRO_BENCH_RESULTS")
    return Path(override) if override else HERE / "results"


def check(results_dir: Path, only: list[str] | None = None) -> int:
    floors = json.loads(FLOORS.read_text())
    tolerance = float(floors["tolerance"])
    baselines = floors["baselines"]
    selected = {name.upper() for name in only} if only else set(baselines)
    unknown = selected - set(baselines)
    if unknown:
        print(f"unknown experiments: {sorted(unknown)}", file=sys.stderr)
        print(f"known: {sorted(baselines)}", file=sys.stderr)
        return 2

    failures = 0
    for name in sorted(selected):
        entry = baselines[name]
        # A per-entry tolerance overrides the global one: overhead-style
        # gates (e.g. the scenario DSL's dispatch efficiency) need a far
        # tighter band than the 20% jitter allowance of raw speedups.
        entry_tolerance = float(entry.get("tolerance", tolerance))
        path = results_dir / entry["file"]
        if not path.exists():
            print(f"FAIL  {name}: missing result file {path}")
            failures += 1
            continue
        summary = json.loads(path.read_text())
        metric = entry.get("metric", "speedup")
        if metric not in summary:
            print(f"FAIL  {name}: {path.name} has no {metric!r} key")
            failures += 1
            continue
        measured = float(summary[metric])
        baseline = float(entry[metric])
        floor = entry_tolerance * baseline
        verdict = "ok" if measured >= floor else "FAIL"
        print(
            f"{verdict:>4}  {name}: {metric} {measured:.2f}x "
            f"(baseline {baseline:.2f}x, floor {floor:.2f}x)"
        )
        if measured < floor:
            failures += 1
    if failures:
        print(
            f"{failures} benchmark(s) regressed more than "
            f"{(1 - tolerance) * 100:.0f}% below baseline"
        )
        return 1
    print("all benchmark metrics within tolerance")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when benchmark speedups regress below floors"
    )
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=None,
        help="directory holding BENCH_*.json (default: benchmarks/results "
        "or $REPRO_BENCH_RESULTS)",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="EXP",
        help="check only these experiments (e.g. VECTOR SCALE)",
    )
    args = parser.parse_args(argv)
    results_dir = args.results_dir or default_results_dir()
    return check(results_dir, args.only)


if __name__ == "__main__":
    raise SystemExit(main())
