"""Shared helpers for the experiment benchmarks.

Each ``bench_*.py`` file reproduces one experiment from the DESIGN.md
index (E1–E13).  Running::

    pytest benchmarks/ --benchmark-only

executes every experiment, prints its table (the reproduced "table/figure"
recorded in EXPERIMENTS.md), asserts the paper's qualitative claims
(who wins, which bound holds), and reports wall-clock timings via
pytest-benchmark for a representative kernel of each experiment.

Benchmarks migrated onto the parallel runner (E2, E3, E16) execute
through :func:`run_experiment_for_bench`, which also writes each
experiment's machine-readable ``BENCH_<EXP_ID>.json`` summary (medians,
CIs, wall time) under ``benchmarks/results/``.  Environment knobs:

``REPRO_BENCH_WORKERS``
    Worker processes for migrated benches (default 0 = inline).
``REPRO_BENCH_CACHE``
    Result-cache directory; set it to make repeat bench runs near-free.
``REPRO_BENCH_RESULTS``
    Where BENCH_*.json summaries land (default ``benchmarks/results``).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Callable, List

from repro.rng import RngFactory

#: Experiment-wide root seed; every benchmark derives from it.
ROOT_SEED = 20260704


def bench_workers() -> int:
    return int(os.environ.get("REPRO_BENCH_WORKERS", "0"))


def bench_results_dir() -> Path:
    override = os.environ.get("REPRO_BENCH_RESULTS")
    if override:
        return Path(override)
    return Path(__file__).parent / "results"


def run_experiment_for_bench(exp_id: str, replications: int, **options: Any):
    """Run a registered experiment the way benches do, summary JSON included.

    One code path serves tests (workers=0 inline), benchmarks, and
    large-scale sweeps: this helper only fixes the root seed and adds the
    ``BENCH_<EXP_ID>.json`` telemetry drop.
    """
    from repro.runner import run_experiment, write_bench_summary

    report = run_experiment(
        exp_id,
        seed=ROOT_SEED,
        replications=replications,
        workers=bench_workers(),
        cache=os.environ.get("REPRO_BENCH_CACHE") or None,
        **options,
    )
    write_bench_summary(
        report, bench_results_dir() / f"BENCH_{exp_id}.json"
    )
    return report


def replication_seeds(name: str, count: int) -> List[int]:
    """Independent seeds for one experiment's replications."""
    factory = RngFactory(ROOT_SEED)
    sub = RngFactory(factory.named(name).randrange(2**63))
    return list(sub.replication_seeds(count))


def mean_over_seeds(name: str, count: int, fn: Callable[[int], float]) -> float:
    seeds = replication_seeds(name, count)
    return sum(fn(seed) for seed in seeds) / len(seeds)
