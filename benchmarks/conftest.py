"""Shared helpers for the experiment benchmarks.

Each ``bench_*.py`` file reproduces one experiment from the DESIGN.md
index (E1–E13).  Running::

    pytest benchmarks/ --benchmark-only

executes every experiment, prints its table (the reproduced "table/figure"
recorded in EXPERIMENTS.md), asserts the paper's qualitative claims
(who wins, which bound holds), and reports wall-clock timings via
pytest-benchmark for a representative kernel of each experiment.
"""

from __future__ import annotations

from typing import Callable, List

from repro.rng import RngFactory

#: Experiment-wide root seed; every benchmark derives from it.
ROOT_SEED = 20260704


def replication_seeds(name: str, count: int) -> List[int]:
    """Independent seeds for one experiment's replications."""
    factory = RngFactory(ROOT_SEED)
    sub = RngFactory(factory.named(name).randrange(2**63))
    return list(sub.replication_seeds(count))


def mean_over_seeds(name: str, count: int, fn: Callable[[int], float]) -> float:
    seeds = replication_seeds(name, count)
    return sum(fn(seed) for seed in seeds) / len(seeds)
