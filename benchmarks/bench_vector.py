"""EV — engine throughput: vector lockstep batch vs scalar slot loop.

Not a paper claim — the capacity statement behind ``--engine vector``:
replications/second of both engines on an E3-style collection cell that
is large enough to matter (n = 200 stations, B = 64 replications), plus
the speedup ratio.  The acceptance floor is 10×; the measured ratio is
recorded in ``benchmarks/results/BENCH_VECTOR.json`` so CI can publish
it as an artifact.

Timing uses plain ``perf_counter`` (no pytest-benchmark fixture): the
scalar engine needs seconds per replication at this size, so the scalar
side is timed on a seed subset and reported as a rate.
"""

import json
import time

from conftest import ROOT_SEED, bench_results_dir

from repro.core import run_collection
from repro.graphs import layered_band, reference_bfs_tree
from repro.rng import derive_seed
from repro.vector import run_collection_batch

#: The benchmark cell: a 25-layer band of width 8 (n = 200), k = 16
#: messages spread over the deepest layer, 64 replications.
LAYERS, WIDTH = 25, 8
K = 16
REPLICATIONS = 64
#: Scalar runs timed (the rate extrapolates; one run is seconds).
SCALAR_SAMPLE = 6
#: Acceptance floor: vector must beat scalar by at least this factor.
MIN_SPEEDUP = 10.0


def _cell():
    graph = layered_band(LAYERS, WIDTH)
    tree = reference_bfs_tree(graph, 0)
    deepest_level = max(tree.level.values())
    deepest = sorted(
        v for v in tree.nodes if tree.level[v] == deepest_level
    )
    per_node = K // len(deepest) or 1
    sources = {
        v: [f"m{v}-{i}" for i in range(per_node)]
        for v in deepest[: K // per_node]
    }
    return graph, tree, sources


def test_vector_engine_speedup():
    graph, tree, sources = _cell()
    seeds = [
        derive_seed(ROOT_SEED, "bench-vector", index)
        for index in range(REPLICATIONS)
    ]

    started = time.perf_counter()
    scalar_slots = [
        run_collection(graph, tree, sources, seed).slots
        for seed in seeds[:SCALAR_SAMPLE]
    ]
    scalar_seconds = time.perf_counter() - started
    scalar_rate = SCALAR_SAMPLE / scalar_seconds

    started = time.perf_counter()
    batch = run_collection_batch(graph, tree, sources, seeds)
    vector_seconds = time.perf_counter() - started
    vector_rate = REPLICATIONS / vector_seconds

    # Sanity: both engines drained the same workload to completion.
    assert all(s > 0 for s in scalar_slots)
    assert (batch.completion_slots > 0).all()

    speedup = vector_rate / scalar_rate
    summary = {
        "experiment": "VECTOR",
        "title": "vector lockstep batch vs scalar slot loop",
        "cell": {
            "topology": f"band-{LAYERS}x{WIDTH}",
            "stations": graph.num_nodes,
            "k": sum(len(v) for v in sources.values()),
            "replications": REPLICATIONS,
            "seed": ROOT_SEED,
        },
        "scalar": {
            "replications_timed": SCALAR_SAMPLE,
            "seconds": round(scalar_seconds, 3),
            "replications_per_sec": round(scalar_rate, 3),
        },
        "vector": {
            "replications_timed": REPLICATIONS,
            "seconds": round(vector_seconds, 3),
            "replications_per_sec": round(vector_rate, 3),
        },
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
    }
    out = bench_results_dir() / "BENCH_VECTOR.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(summary, indent=2) + "\n")
    print(
        f"\nEV: scalar {scalar_rate:.2f} rep/s, vector {vector_rate:.2f} "
        f"rep/s, speedup {speedup:.1f}x -> {out}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vector engine only {speedup:.1f}x faster than scalar "
        f"(floor {MIN_SPEEDUP}x)"
    )
