"""E9 — §7: ranking in O(n·log n·log Δ) time.

Sweeps n and reports slots normalized by n·log2(n)·log2(Δ); the §7 claim
is a flat constant.  (Excludes the setup cost, matching the paper's "not
including the setup costs of Section 2".)
"""

import math
import random

from conftest import replication_seeds

from repro.analysis import print_table, scaling_exponent, summarize
from repro.core import run_ranking
from repro.graphs import path, random_geometric, reference_bfs_tree


def measure_ranking(build, name):
    samples = []
    for seed in replication_seeds(name, 3):
        graph = build(random.Random(seed))
        tree = reference_bfs_tree(graph, 0)
        tree.assign_dfs_intervals()
        result = run_ranking(graph, tree, seed=seed)
        expected = {v: i + 1 for i, v in enumerate(sorted(graph.nodes))}
        assert result.ranks == expected
        samples.append(float(result.slots))
    return summarize(samples).mean


def test_e9_ranking_scaling(benchmark):
    rows = []
    sizes = [8, 16, 32]
    means = {}
    for n in sizes:
        for family, build in [
            (f"path-{n}", lambda r, n=n: path(n)),
            (
                f"rgg-{n}",
                lambda r, n=n: random_geometric(
                    n, radius=max(0.25, 1.8 / math.sqrt(n)), rng=r
                ),
            ),
        ]:
            graph = build(random.Random(0))
            mean = measure_ranking(build, f"e9-{family}")
            means[family] = mean
            norm = mean / (
                graph.num_nodes
                * math.log2(max(2, graph.num_nodes))
                * math.log2(max(2, graph.max_degree()))
            )
            rows.append([family, graph.num_nodes, mean, norm])
    print_table(
        ["topology", "n", "slots (mean)", "slots/(n·logn·logΔ)"],
        rows,
        title="E9: ranking cost, normalized to the §7 bound",
    )
    alpha = scaling_exponent(
        sizes, [means[f"path-{n}"] for n in sizes]
    )
    # O(n log n): log-log slope a bit above 1, far below 2.
    assert 0.7 <= alpha <= 1.6, alpha

    graph = path(10)
    tree = reference_bfs_tree(graph, 0)
    tree.assign_dfs_intervals()
    benchmark(lambda: run_ranking(graph, tree, seed=2).slots)
