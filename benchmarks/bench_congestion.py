"""E14 — §8 remark (5): tree routing congests the root's neighborhood.

"Our protocols route messages through a spanning tree causing congestion
at the root.  Are there efficient communication protocols that avoid this
problem?"  (Left open by the paper.)

We quantify the observation: for all-leaves-to-root collection on
branching trees, the per-station transmission load at level 1 grows with
the subtree size it must forward, while leaf stations transmit O(1) —
making level 1 the hotspot exactly as the remark warns.  E14 also checks
a multiplexing corollary: the root-adjacent *channel* occupancy (the
fraction of level-1 data slots carrying traffic) approaches saturation as
k grows, which is the physical reason the throughput cannot beat one
message per Decay phase.
"""

import random

from conftest import replication_seeds

from repro.analysis import congestion_profile, print_table, summarize
from repro.graphs import balanced_tree, caterpillar, reference_bfs_tree


def per_station_loads(graph, tree, seed):
    """(max messages handled per station at each level, mean ditto)."""
    sources = {
        n: ["r1", "r2"] for n in tree.nodes if tree.level[n] == tree.depth
    }
    profile = congestion_profile(graph, tree, sources, seed=seed)
    max_load = {}
    mean_load = {}
    for level in range(1, tree.depth + 1):
        stations = tree.layer(level)
        loads = [profile.per_node_handled[v] for v in stations]
        max_load[level] = max(loads)
        mean_load[level] = sum(loads) / len(loads)
    return max_load, mean_load


def test_e14_root_congestion(benchmark):
    rows = []
    scenarios = [
        ("tree-b2-d4", balanced_tree(2, 4)),
        ("tree-b3-d3", balanced_tree(3, 3)),
        ("caterpillar-8x3", caterpillar(8, 3)),
    ]
    for name, graph in scenarios:
        tree = reference_bfs_tree(graph, 0)
        level1_loads, leaf_loads, ratios = [], [], []
        for seed in replication_seeds(f"e14-{name}", 4):
            max_load, mean_load = per_station_loads(graph, tree, seed)
            level1_loads.append(float(max_load[1]))
            leaf_loads.append(mean_load[tree.depth])
            ratios.append(max_load[1] / max(1e-9, mean_load[tree.depth]))
        rows.append(
            [
                name,
                tree.depth,
                len(tree.layer(1)),
                summarize(level1_loads).mean,
                summarize(leaf_loads).mean,
                summarize(ratios).mean,
            ]
        )
        # The remark, quantified: root-adjacent stations are the hotspot.
        assert summarize(ratios).mean > 2.0, (name, ratios)
    print_table(
        [
            "topology",
            "D",
            "level-1 stations",
            "max handled @L1",
            "mean handled @leaves",
            "hotspot ratio",
        ],
        rows,
        title="E14: §8 remark (5) — per-station load concentrates at level 1",
    )
    graph = balanced_tree(2, 3)
    tree = reference_bfs_tree(graph, 0)
    benchmark(
        lambda: congestion_profile(
            graph,
            tree,
            {n: ["x"] for n in tree.nodes if tree.level[n] == tree.depth},
            seed=1,
        ).busiest_level
    )
