"""E8 — §6: k broadcasts in O((k + D)·log Δ·log n) slots;
steady-state throughput one broadcast per O(log Δ·log n) slots.

Sweeps k, reports total slots, superphases consumed (pipeline theory says
≈ k + D + constant), the normalized constant slots/((k+D)·logΔ·logn), and
NACK-driven resends (expected ≈ 0 with the paper's ε = 1/n² superphase
sizing).
"""

import math
import random

from conftest import replication_seeds

from repro.analysis import print_table, summarize
from repro.core import run_broadcast
from repro.graphs import grid, path, random_geometric, reference_bfs_tree


def mean_broadcast(build, k, name):
    slots, superphases, resends = [], [], []
    for seed in replication_seeds(name, 3):
        graph = build(random.Random(seed))
        tree = reference_bfs_tree(graph, 0)
        nodes = list(graph.nodes)
        submissions = {nodes[1 % len(nodes)]: [f"m{i}" for i in range(k)]}
        result = run_broadcast(graph, tree, submissions, seed=seed)
        assert result.delivered_everywhere
        slots.append(float(result.slots))
        superphases.append(float(result.superphases))
        resends.append(float(result.resends))
    return (
        summarize(slots).mean,
        summarize(superphases).mean,
        summarize(resends).mean,
    )


def test_e8_broadcast_throughput(benchmark):
    rows = []
    scenarios = [
        ("path-12", lambda r: path(12)),
        ("grid-4x4", lambda r: grid(4, 4)),
        ("rgg-24", lambda r: random_geometric(24, 0.35, r)),
    ]
    for name, build in scenarios:
        graph = build(random.Random(0))
        tree = reference_bfs_tree(graph, 0)
        log_delta = math.log2(max(2, graph.max_degree()))
        log_n = math.log2(max(2, graph.num_nodes))
        for k in (2, 6, 12):
            slots, superphases, resends = mean_broadcast(
                build, k, f"e8-{name}-{k}"
            )
            constant = slots / ((k + tree.depth) * log_delta * log_n)
            rows.append(
                [name, k, tree.depth, slots, superphases, constant, resends]
            )
            # Pipeline theory: superphases ≈ k + D + small queuing slack
            # (collection to the root adds a few when the source is deep).
            assert superphases <= 3 * (k + tree.depth) + 20, (
                name,
                k,
                superphases,
            )
            assert resends <= 2
    print_table(
        [
            "topology",
            "k",
            "D",
            "slots (mean)",
            "superphases",
            "slots/((k+D)logΔlogn)",
            "resends",
        ],
        rows,
        title="E8: pipelined k-broadcast — throughput O(logΔ·logn)/message",
    )
    graph = path(8)
    tree = reference_bfs_tree(graph, 0)
    benchmark(
        lambda: run_broadcast(
            graph, tree, {1: ["a", "b"]}, seed=5
        ).slots
    )
