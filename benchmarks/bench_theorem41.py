"""E2 — Theorem 4.1: per-phase level-advance probability ≥ µ = e⁻¹(1−e⁻¹).

"Let i ≥ 1 be a level containing messages at the beginning of a phase.
There is probability µ = e⁻¹(1−e⁻¹) that during the phase a message from
level i is successfully received by its BFS parent."

Unlike Decay property (2) this demands the message arrive at its *correct
destination* despite cross-traffic toward other parents.  The adversarial
shape (root, P parents, C children adjacent to all parents) and the
advance-rate measurement live in ``repro.runner.defs`` as experiment
``E2``; this bench drives the grid through the parallel runner and
asserts the bound per configuration.  Summary JSON:
``benchmarks/results/BENCH_E2.json``.
"""

from conftest import run_experiment_for_bench

from repro.analysis import print_table, summarize
from repro.core import MU
from repro.runner.defs import E2_CONFIGS, advance_rate_metrics


def test_e2_theorem_41_advance_probability(benchmark):
    report = run_experiment_for_bench("E2", replications=6)
    cells = {}
    for outcomes in report.grouped().values():
        params = outcomes[0].spec.params
        cells[(params["parents"], params["children"])] = outcomes

    rows = []
    for parents, children, load in E2_CONFIGS:
        outcomes = cells[(parents, children)]
        summary = summarize(
            [o.metrics["advance_rate"] for o in outcomes]
        )
        delta = outcomes[0].metrics["delta"]
        rows.append(
            [
                parents,
                children,
                delta,
                load,
                summary.mean,
                MU,
                "yes" if summary.mean >= MU else "NO",
            ]
        )
        assert summary.mean >= MU, (parents, children, summary)
    print_table(
        [
            "parents",
            "children",
            "Δ",
            "msgs/child",
            "advance rate",
            "µ bound",
            "≥ µ",
        ],
        rows,
        title="E2: Thm 4.1 — per-phase P[level advances] vs µ ≈ 0.2325",
    )
    benchmark(lambda: advance_rate_metrics(2, 8, 1, seed=1))
