"""E2 — Theorem 4.1: per-phase level-advance probability ≥ µ = e⁻¹(1−e⁻¹).

"Let i ≥ 1 be a level containing messages at the beginning of a phase.
There is probability µ = e⁻¹(1−e⁻¹) that during the phase a message from
level i is successfully received by its BFS parent."

Unlike Decay property (2) this demands the message arrive at its *correct
destination* despite cross-traffic toward other parents.  We build the
adversarial shape directly: a root, P parents at level 1, C children at
level 2 adjacent to *all* parents (so every child's transmission can
collide at every parent), give every child messages, and measure the
fraction of phases (while level 2 is loaded) in which the level-2 backlog
strictly drops.  Both the |TRY| ≤ Δ and |TRY| > Δ regimes of the theorem's
proof are exercised by sweeping C against the Decay budget's Δ.
"""

from conftest import replication_seeds

from repro.analysis import print_table, summarize
from repro.core import MU
from repro.core.collection import build_collection_network
from repro.graphs import Graph, reference_bfs_tree


def contention_graph(parents: int, children: int) -> Graph:
    """Root 0; parents 1..P at level 1; children fully joined to parents."""
    edges = [(0, p) for p in range(1, parents + 1)]
    for c in range(parents + 1, parents + children + 1):
        for p in range(1, parents + 1):
            edges.append((p, c))
    return Graph.from_edges(edges)


def measure_advance_rate(
    parents: int, children: int, load: int, seed: int
) -> float:
    graph = contention_graph(parents, children)
    tree = reference_bfs_tree(graph, 0)
    child_ids = [
        n for n in graph.nodes if tree.level[n] == 2
    ]
    sources = {c: [f"m{c}-{i}" for i in range(load)] for c in child_ids}
    network, processes, slots = build_collection_network(
        graph, tree, sources, seed
    )

    def level2_backlog() -> int:
        return sum(processes[c].backlog for c in child_ids)

    successes = 0
    phases = 0
    while level2_backlog() > 0 and phases < 5_000:
        before = level2_backlog()
        for _ in range(slots.phase_length):
            network.step()
        phases += 1
        if level2_backlog() < before:
            successes += 1
    return successes / max(1, phases)


def test_e2_theorem_41_advance_probability(benchmark):
    rows = []
    configs = [
        # (parents, children, load) — children vs Δ spans both proof cases
        (1, 2, 3),
        (1, 6, 3),
        (2, 8, 2),
        (3, 12, 2),
        (2, 24, 1),
    ]
    for parents, children, load in configs:
        samples = [
            measure_advance_rate(parents, children, load, seed)
            for seed in replication_seeds(
                f"e2-{parents}-{children}", 6
            )
        ]
        summary = summarize(samples)
        delta = contention_graph(parents, children).max_degree()
        rows.append(
            [
                parents,
                children,
                delta,
                load,
                summary.mean,
                MU,
                "yes" if summary.mean >= MU else "NO",
            ]
        )
        assert summary.mean >= MU, (parents, children, summary)
    print_table(
        [
            "parents",
            "children",
            "Δ",
            "msgs/child",
            "advance rate",
            "µ bound",
            "≥ µ",
        ],
        rows,
        title="E2: Thm 4.1 — per-phase P[level advances] vs µ ≈ 0.2325",
    )
    benchmark(lambda: measure_advance_rate(2, 8, 1, seed=1))
