"""E13 — Theorem 3.1: deterministic acknowledgements and their price.

"The overhead of the acknowledgement mechanism is minimal — it slows down
the protocol by a factor of 2."  We measure, across topologies and seeds:

* zero duplicate designated receptions (the theorem's guarantee — every
  received message is acked, so no sender ever retransmits a delivered
  message into a new acceptance);
* the ack traffic volume relative to data traffic (at most one ack per
  data delivery; far fewer than data *transmissions*, since only
  successful receptions generate acks);
* the factor-2 slot structure cost is exact by construction (every data
  slot is paired with an ack slot).
"""

import random

from conftest import replication_seeds

from repro.analysis import print_table
from repro.core import run_collection
from repro.core.collection import build_collection_network
from repro.graphs import (
    grid,
    layered_band,
    random_geometric,
    reference_bfs_tree,
    star,
)


def instrumented_run(graph, tree, sources, seed):
    network, processes, slots = build_collection_network(
        graph, tree, sources, seed
    )
    total = sum(len(v) for v in sources.values())
    root = processes[tree.root]
    network.run(
        1_000_000,
        until=lambda n: len(root.delivered) >= total
        and all(p.is_done() for p in processes.values()),
    )
    data_tx = sum(p.lane.data_transmissions for p in processes.values())
    ack_tx = sum(p.lane.ack_transmissions for p in processes.values())
    duplicates = sum(p.lane.duplicates_seen for p in processes.values())
    return network.slot, data_tx, ack_tx, duplicates


def test_e13_ack_determinism_and_overhead(benchmark):
    rows = []
    scenarios = [
        ("star-12", lambda r: star(12)),
        ("grid-4x4", lambda r: grid(4, 4)),
        ("band-4x4", lambda r: layered_band(4, 4)),
        ("rgg-24", lambda r: random_geometric(24, 0.35, r)),
    ]
    for name, build in scenarios:
        for seed in replication_seeds(f"e13-{name}", 4):
            graph = build(random.Random(seed))
            tree = reference_bfs_tree(graph, 0)
            sources = {
                n: ["a", "b"] for n in graph.nodes if n != tree.root
            }
            slots, data_tx, ack_tx, duplicates = instrumented_run(
                graph, tree, sources, seed
            )
            hops = sum(
                2 * tree.level[n] for n in graph.nodes if n != tree.root
            )
            rows.append(
                [
                    name,
                    seed % 10_000,
                    slots,
                    data_tx,
                    ack_tx,
                    ack_tx / max(1, data_tx),
                    duplicates,
                ]
            )
            # Theorem 3.1, observable form: no duplicates, ever.
            assert duplicates == 0
            # Exactly one ack per successful designated delivery: ack
            # count equals total message-hops (each hop delivered once).
            assert ack_tx == hops, (name, ack_tx, hops)
            # Acks are cheaper than data (data includes Decay retries).
            assert ack_tx <= data_tx
    print_table(
        [
            "topology",
            "seed",
            "slots",
            "data tx",
            "ack tx",
            "ack/data",
            "duplicates",
        ],
        rows,
        title="E13: Thm 3.1 — deterministic acks; overhead ≤ ×2 by schedule",
    )
    graph = star(10)
    tree = reference_bfs_tree(graph, 0)
    benchmark(
        lambda: run_collection(
            graph, tree, {n: ["z"] for n in range(1, 10)}, seed=5
        ).slots
    )
