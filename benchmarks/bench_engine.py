"""E0 — infrastructure: raw simulator throughput.

Not a paper claim — a capacity statement for the reproduction itself:
how many slot·station updates per second the engine sustains, and how
cost scales with network size and density.  This is what bounds the
experiment sizes everywhere else in the harness.
"""

import random
import time

from repro.analysis import print_table
from repro.core import run_collection
from repro.graphs import (
    gnp_connected,
    grid,
    path,
    reference_bfs_tree,
)
from repro.radio import RadioNetwork, SilentProcess


def idle_slot_rate(graph, slots=2_000):
    """Slots/second with all-silent stations (pure engine overhead)."""
    network = RadioNetwork(graph)
    network.attach_all(SilentProcess)
    start = time.perf_counter()
    network.run(slots)
    elapsed = time.perf_counter() - start
    return slots / elapsed


def test_e0_engine_throughput(benchmark):
    rows = []
    for name, graph in [
        ("path-64", path(64)),
        ("grid-16x16", grid(16, 16)),
        ("gnp-128", gnp_connected(128, 0.08, random.Random(1))),
    ]:
        rate = idle_slot_rate(graph)
        rows.append(
            [
                name,
                graph.num_nodes,
                graph.num_edges,
                rate,
                rate * graph.num_nodes,
            ]
        )
    print_table(
        ["topology", "n", "edges", "slots/s", "station-slots/s"],
        rows,
        title="E0: engine throughput (idle stations; protocol work extra)",
    )
    # A laptop-scale floor: the harness assumes ~10^4 slots/s at n≈100.
    assert all(row[3] > 2_000 for row in rows)

    # The benchmark proper: a busy protocol workload (collection).
    graph = grid(6, 6)
    tree = reference_bfs_tree(graph, 0)
    sources = {n: ["m"] for n in list(graph.nodes)[1:13]}
    benchmark(
        lambda: run_collection(graph, tree, sources, seed=3).slots
    )


def test_e0_neighbor_cache_guard(benchmark):
    """Guard: neighbor tuples are derived once per topology, not per slot.

    The reception loop iterates per-node neighbor tuples millions of
    times; they must come from the cache built at topology-assignment
    time.  The identity checks pin the contract (same cache object
    across slots; rebuilt exactly when ``graph`` is reassigned) and the
    benchmark tracks the cached hot path so a regression that re-derives
    adjacency per slot shows up as a step change.
    """
    graph = grid(12, 12)
    network = RadioNetwork(graph)
    network.attach_all(SilentProcess)
    cached = network._neighbors
    network.run(200)
    assert network._neighbors is cached, "cache rebuilt inside slot loop"
    network.graph = grid(12, 12)
    assert network._neighbors is not cached, (
        "topology change must rebuild the neighbor cache"
    )

    bench_network = RadioNetwork(grid(12, 12))
    bench_network.attach_all(SilentProcess)
    benchmark(lambda: bench_network.run(200))
