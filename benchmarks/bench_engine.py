"""E0 — infrastructure: raw simulator throughput.

Not a paper claim — a capacity statement for the reproduction itself:
how many slot·station updates per second the engine sustains, and how
cost scales with network size and density.  This is what bounds the
experiment sizes everywhere else in the harness.
"""

import json
import random
import time

from conftest import ROOT_SEED, bench_results_dir

from repro.analysis import print_table
from repro.core import build_collection_network, run_collection
from repro.graphs import (
    balanced_tree,
    gnp_connected,
    grid,
    path,
    reference_bfs_tree,
)
from repro.radio import RadioNetwork, SilentProcess


def idle_slot_rate(graph, slots=2_000):
    """Slots/second with all-silent stations (pure engine overhead)."""
    network = RadioNetwork(graph)
    network.attach_all(SilentProcess)
    start = time.perf_counter()
    network.run(slots)
    elapsed = time.perf_counter() - start
    return slots / elapsed


def test_e0_engine_throughput(benchmark):
    rows = []
    for name, graph in [
        ("path-64", path(64)),
        ("grid-16x16", grid(16, 16)),
        ("gnp-128", gnp_connected(128, 0.08, random.Random(1))),
    ]:
        rate = idle_slot_rate(graph)
        rows.append(
            [
                name,
                graph.num_nodes,
                graph.num_edges,
                rate,
                rate * graph.num_nodes,
            ]
        )
    print_table(
        ["topology", "n", "edges", "slots/s", "station-slots/s"],
        rows,
        title="E0: engine throughput (idle stations; protocol work extra)",
    )
    # A laptop-scale floor: the harness assumes ~10^4 slots/s at n≈100.
    assert all(row[3] > 2_000 for row in rows)

    # The benchmark proper: a busy protocol workload (collection).
    graph = grid(6, 6)
    tree = reference_bfs_tree(graph, 0)
    sources = {n: ["m"] for n in list(graph.nodes)[1:13]}
    benchmark(
        lambda: run_collection(graph, tree, sources, seed=3).slots
    )


def test_e0_neighbor_cache_guard(benchmark):
    """Guard: neighbor tuples are derived once per topology, not per slot.

    The reception loop iterates per-node neighbor tuples millions of
    times; they must come from the cache built at topology-assignment
    time.  The identity checks pin the contract (same cache object
    across slots; rebuilt exactly when ``graph`` is reassigned) and the
    benchmark tracks the cached hot path so a regression that re-derives
    adjacency per slot shows up as a step change.
    """
    graph = grid(12, 12)
    network = RadioNetwork(graph)
    network.attach_all(SilentProcess)
    cached = network._neighbors
    network.run(200)
    assert network._neighbors is cached, "cache rebuilt inside slot loop"
    network.graph = grid(12, 12)
    assert network._neighbors is not cached, (
        "topology change must rebuild the neighbor cache"
    )

    bench_network = RadioNetwork(grid(12, 12))
    bench_network.attach_all(SilentProcess)
    benchmark(lambda: bench_network.run(200))


#: Idle-scheduling bench cell: a level-multiplexed collection on a
#: depth-10 binary tree with n = 2047 stations, k = 32 messages at the
#: deepest leaves — level classes (§2.2) plus mostly-empty buffers make
#: almost every station declarably silent in almost every slot.
IDLE_DEPTH = 10
IDLE_K = 32
IDLE_WINDOW = 2_000
IDLE_MIN_SPEEDUP = 2.0


def _idle_cell():
    graph = balanced_tree(2, IDLE_DEPTH)
    tree = reference_bfs_tree(graph, 0)
    deepest = sorted(
        v for v in tree.nodes if tree.level[v] == IDLE_DEPTH
    )[:IDLE_K]
    sources = {v: [f"m{v}"] for v in deepest}
    return graph, tree, sources


def _collection_fingerprint(network, processes, root):
    """Everything observable about a collection run's protocol outcome."""
    stats = network.stats.channel(0)
    return {
        "delivered": [m.msg_id for m in processes[root].delivered],
        "backlogs": [p.lane.backlog for p in processes.values()],
        "data_tx": sum(p.lane.data_transmissions for p in processes.values()),
        "ack_tx": sum(p.lane.ack_transmissions for p in processes.values()),
        "transmissions": stats.transmissions,
        "deliveries": stats.deliveries,
        "collisions": stats.collisions,
    }


def test_e0_idle_scheduling_speedup():
    """The quiet_until fast path: >= 2x slots/sec, identical outcomes.

    Both runs use the same seed and execute the same fixed slot window;
    the only difference is ``idle_scheduling``.  The fingerprints must
    agree exactly — the fast path skips only provable no-op callbacks,
    so every transmission, delivery, collision and coin flip is
    unchanged.
    """
    graph, tree, sources = _idle_cell()
    runs = {}
    for idle in (False, True):
        network, processes, _ = build_collection_network(
            graph, tree, sources, seed=ROOT_SEED
        )
        network.idle_scheduling = idle
        started = time.perf_counter()
        network.run(IDLE_WINDOW)
        seconds = time.perf_counter() - started
        runs[idle] = (
            seconds,
            _collection_fingerprint(network, processes, tree.root),
        )

    legacy_seconds, legacy_print = runs[False]
    idle_seconds, idle_print = runs[True]
    assert idle_print == legacy_print, (
        "idle scheduling changed protocol outcomes"
    )
    # The workload must be real: traffic flowed and drained to the root.
    assert idle_print["deliveries"] > 0
    assert len(idle_print["delivered"]) > 0

    legacy_rate = IDLE_WINDOW / legacy_seconds
    idle_rate = IDLE_WINDOW / idle_seconds
    speedup = idle_rate / legacy_rate
    summary = {
        "experiment": "IDLE",
        "title": "idle-aware scalar slot loop vs poll-every-process",
        "cell": {
            "topology": f"btree-2x{IDLE_DEPTH}",
            "stations": graph.num_nodes,
            "k": IDLE_K,
            "window_slots": IDLE_WINDOW,
            "seed": ROOT_SEED,
        },
        "legacy": {
            "seconds": round(legacy_seconds, 3),
            "slots_per_sec": round(legacy_rate, 1),
        },
        "idle": {
            "seconds": round(idle_seconds, 3),
            "slots_per_sec": round(idle_rate, 1),
        },
        "speedup": round(speedup, 2),
        "min_speedup": IDLE_MIN_SPEEDUP,
    }
    out = bench_results_dir() / "BENCH_IDLE.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(summary, indent=2) + "\n")
    print(
        f"\nE0-idle: legacy {legacy_rate:.0f} slots/s, idle-aware "
        f"{idle_rate:.0f} slots/s, speedup {speedup:.1f}x -> {out}"
    )
    assert speedup >= IDLE_MIN_SPEEDUP, (
        f"idle-aware loop only {speedup:.1f}x faster at n="
        f"{graph.num_nodes} (floor {IDLE_MIN_SPEEDUP}x)"
    )
