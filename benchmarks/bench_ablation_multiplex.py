"""E11 — ablation of the §2.2 level multiplexing (mod-3 slot classes).

The paper buys cross-level collision freedom with a ×3 slot slowdown.
This experiment runs collection with 1 vs 3 level classes:

* Correctness survives either way (the ack layer is class-agnostic).
* **Finding:** at these scales the un-multiplexed variant is *faster on
  every topology tried* — the cross-level collisions that multiplexing
  prevents are absorbed more cheaply by the resend-until-ack loop than by
  a ×3 slot schedule.  The classes=3/classes=1 slot ratio stays between
  1 and 3: multiplexing never wins outright, it only narrows its own ×3
  overhead where cross-level collisions are frequent.  This is consistent
  with the paper: §2.2's multiplexing is an ingredient of the *analysis*
  (it makes Theorem 4.1's µ a clean per-level guarantee), not an
  empirical optimization claim.

For the *distribution* protocol the multiplexing underpins "if v receives
any message it must be from level i−1"; our implementation additionally
filters on the sender_level field, so classes=1 stays correct there too —
and faster, for the same reason.
"""

import random

from conftest import replication_seeds

from repro.analysis import print_table, summarize
from repro.core import run_broadcast, run_collection
from repro.graphs import caterpillar, layered_band, path, reference_bfs_tree


def collection_slots(graph, tree, sources, classes, name):
    return summarize(
        [
            float(
                run_collection(
                    graph, tree, sources, seed=s, level_classes=classes
                ).slots
            )
            for s in replication_seeds(name, 5)
        ]
    ).mean


def test_e11_level_multiplexing_collection(benchmark):
    rows = []
    scenarios = [
        ("path-16", path(16)),
        ("caterpillar-10x4", caterpillar(10, 4)),
        ("band-8x4", layered_band(8, 4)),
    ]
    ratios = {}
    for name, graph in scenarios:
        tree = reference_bfs_tree(graph, 0)
        deepest = max(tree.nodes, key=lambda v: (tree.level[v], v))
        sources = {deepest: [f"m{i}" for i in range(10)]}
        with_mux = collection_slots(graph, tree, sources, 3, f"e11-{name}-3")
        without = collection_slots(graph, tree, sources, 1, f"e11-{name}-1")
        ratios[name] = with_mux / without
        rows.append([name, tree.depth, with_mux, without, ratios[name]])
    print_table(
        ["topology", "D", "slots (classes=3)", "slots (classes=1)", "3/1"],
        rows,
        title="E11: collection with vs without mod-3 level multiplexing",
    )
    # Both variants are correct; the multiplexed schedule costs at most
    # its raw ×3 (it never *wins* at these scales — see module docstring),
    # and always at least breaks even on slots divided by classes.
    for name, ratio in ratios.items():
        assert 1.0 <= ratio <= 3.5, (name, ratio)

    graph = layered_band(4, 3)
    tree = reference_bfs_tree(graph, 0)
    benchmark(
        lambda: run_collection(
            graph, tree, {graph.nodes[-1]: ["x"] * 3}, seed=2, level_classes=1
        ).slots
    )


def test_e11_distribution_needs_multiplexing(benchmark):
    """§6's analysis relies on 'if v receives any message it must be from
    level i−1' — true only under mod-3 classes.  With classes=1 the
    sender_level filter must discard cross-level receptions; count them."""
    graph = layered_band(5, 3)
    tree = reference_bfs_tree(graph, 0)
    submissions = {0: [f"m{i}" for i in range(5)]}
    rows = []
    for classes in (3, 1):
        slots_mean = []
        for seed in replication_seeds(f"e11d-{classes}", 3):
            result = run_broadcast(
                graph,
                tree,
                submissions,
                seed=seed,
                level_classes=classes,
            )
            assert result.delivered_everywhere  # filter keeps it correct
            slots_mean.append(float(result.slots))
        rows.append([classes, summarize(slots_mean).mean])
    print_table(
        ["level classes", "broadcast slots (mean)"],
        rows,
        title="E11b: distribution correct under both, via sender_level filter",
    )
    benchmark(
        lambda: run_broadcast(
            path(6), reference_bfs_tree(path(6), 0), {0: ["a"]}, seed=1
        ).slots
    )
