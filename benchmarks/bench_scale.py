"""ES — large-n scaling: sparse CSR reception vs the dense adjacency product.

Not a paper claim — the capacity statement behind ``--reception sparse``:
at n = 10⁴ stations on a unit-disk field (the canonical radio topology),
the dense kernel pays O(B·n²) work and a ~400 MB float32 adjacency per
batch regardless of how few stations transmit, while the CSR scatter
pays O(transmitters·degree).  This bench times both kernels on an
*identical* slot window of one collection batch, asserts their
trajectories stayed bit-identical, and records the throughput ratio in
``benchmarks/results/BENCH_SCALE.json`` (regression-gated by
``benchmarks/check_regression.py`` against ``benchmarks/floors.json``).

The window is deliberately short: the dense kernel needs ~1 GFLOP per
slot at this size, and a dozen slots is plenty to time it; the sparse
kernel's advantage only grows with run length.
"""

import json
import random
import time

import numpy as np
from conftest import ROOT_SEED, bench_results_dir

from repro.graphs import random_geometric, reference_bfs_tree
from repro.rng import derive_seed
from repro.vector.collection import BatchCollection
from repro.vector.engine import LockstepRadio

#: The benchmark cell: a connected unit-disk field with n = 10_000
#: stations (radius tuned for mean degree ~10, Δ ≈ 25).
N = 10_000
RADIUS = 0.018
K = 32
REPLICATIONS = 4
#: Untimed warm-up slots: fills the amortized coin block (identical in
#: both runs) so a refill that serves 256 data slots is not charged to
#: a 12-slot timing window.
WARMUP = 4
#: Slots timed per kernel (identical window, identical coins).
WINDOW = 12
#: Acceptance floor: sparse must beat dense by at least this factor.
MIN_SPEEDUP = 5.0


def _cell():
    graph = random_geometric(N, RADIUS, random.Random(ROOT_SEED))
    tree = reference_bfs_tree(graph, 0)
    deepest_level = max(tree.level.values())
    deepest = sorted(
        v for v in tree.nodes if tree.level[v] == deepest_level
    )[:K]
    sources = {v: [f"m{v}"] for v in deepest}
    return graph, tree, sources


def _batch_state(sim):
    return (
        sim.backlog.copy(),
        sim.head.copy(),
        sim.delivered_count.copy(),
        sim.pending_child.copy(),
        sim.pending_msg.copy(),
        sim.done.copy(),
    )


def _timed_window(sim, slots):
    started = time.perf_counter()
    for _ in range(slots):
        sim.step()
    return time.perf_counter() - started


def test_sparse_kernel_scaling():
    graph, tree, sources = _cell()
    seeds = [
        derive_seed(ROOT_SEED, "bench-scale", index)
        for index in range(REPLICATIONS)
    ]

    # mask="off" pins both runs to the full-width loop: the bench times
    # the reception kernels, and at this n the auto mask would otherwise
    # switch both sims onto the pair-list path where reception mode is
    # irrelevant (the masked loop scatters over awake pairs directly).
    sparse = BatchCollection(
        graph, tree, sources, seeds, reception="sparse", mask="off"
    )
    dense = BatchCollection(
        graph, tree, sources, seeds, reception="dense", mask="off"
    )
    assert sparse.radio.reception == "sparse"
    assert dense.radio.reception == "dense"
    # The auto heuristic must pick sparse at this size on its own.
    auto = LockstepRadio(graph, tree, 1, reception="auto")
    assert auto.reception == "sparse"

    for sim in (sparse, dense):
        for _ in range(WARMUP):
            sim.step()
    sparse_seconds = _timed_window(sparse, WINDOW)
    dense_seconds = _timed_window(dense, WINDOW)

    # Same seeds, same coins, bit-identical kernels: after the identical
    # window the two batch states must agree exactly.
    for a, b in zip(_batch_state(sparse), _batch_state(dense)):
        assert np.array_equal(a, b)
    assert sparse.slot == dense.slot == WARMUP + WINDOW

    sparse_rate = REPLICATIONS * WINDOW / sparse_seconds
    dense_rate = REPLICATIONS * WINDOW / dense_seconds
    speedup = sparse_rate / dense_rate
    nnz = int(sparse.radio.indices.size)
    summary = {
        "experiment": "SCALE",
        "title": "sparse CSR reception vs dense adjacency product",
        "cell": {
            "topology": f"rgg-{N}",
            "stations": graph.num_nodes,
            "edges": nnz // 2,
            "density": round(nnz / (N * N), 6),
            "max_degree": graph.max_degree(),
            "k": sum(len(v) for v in sources.values()),
            "replications": REPLICATIONS,
            "window_slots": WINDOW,
            "seed": ROOT_SEED,
        },
        "dense": {
            "seconds": round(dense_seconds, 3),
            "replication_slots_per_sec": round(dense_rate, 3),
        },
        "sparse": {
            "seconds": round(sparse_seconds, 3),
            "replication_slots_per_sec": round(sparse_rate, 3),
        },
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "auto_resolution": auto.reception,
    }
    out = bench_results_dir() / "BENCH_SCALE.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(summary, indent=2) + "\n")
    print(
        f"\nES: dense {dense_rate:.2f} rep·slots/s, sparse "
        f"{sparse_rate:.2f} rep·slots/s, speedup {speedup:.1f}x -> {out}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"sparse kernel only {speedup:.1f}x faster than dense at n={N} "
        f"(floor {MIN_SPEEDUP}x)"
    )


# ----------------------------------------------------------------------
# SCALE100K — the idle-aware (active-set masked) loop at n up to 10⁵
# ----------------------------------------------------------------------
#
# The capacity statement behind ``--mask``: a collection batch with k
# messages has at most O(k·B) provably-awake (replication, station)
# pairs per slot, while the full-width loop pays O(B·n) regardless.
# This sweep times the masked loop against the unmasked sparse loop on
# unit-disk fields of growing n (same radio physics, distributionally
# identical protocol), records the awake-set occupancy that explains
# the gap, and gates the largest-n speedup in
# ``benchmarks/results/BENCH_SCALE100K.json``.

#: Sweep sizes; ``REPRO_SCALE_N`` (single integer) overrides the whole
#: sweep — CI smoke runs the reduced n=10⁴ point through the same gate.
SWEEP_NS = (10_000, 30_000, 100_000)
#: Unit-disk mean-degree target.  Connectivity needs ~ln n; 15.4 keeps
#: a comfortable margin at n = 10⁵ (ln 10⁵ ≈ 11.5) without inflating Δ.
TARGET_MEAN_DEGREE = 15.4
#: Sources (stations at the deepest levels) and replications per point.
SWEEP_K = 32
SWEEP_REPLICATIONS = 3
SWEEP_WARMUP = 4
SWEEP_WINDOW = 24
#: Acceptance floor at the largest sweep point: the masked loop must
#: beat the unmasked sparse loop by at least this factor.
MIN_MASKED_SPEEDUP = 5.0


def _sweep_ns():
    import os

    override = os.environ.get("REPRO_SCALE_N")
    if override:
        return (int(override),)
    return SWEEP_NS


def _sweep_cell(n):
    import math

    radius = math.sqrt(TARGET_MEAN_DEGREE / (math.pi * n))
    graph = random_geometric(n, radius, random.Random(ROOT_SEED))
    tree = reference_bfs_tree(graph, 0)
    deepest_level = max(tree.level.values())
    sources = {}
    level = deepest_level
    while len(sources) < SWEEP_K and level > 0:
        for v in sorted(v for v in tree.nodes if tree.level[v] == level):
            if len(sources) == SWEEP_K:
                break
            sources[v] = [f"m{v}"]
        level -= 1
    return graph, tree, sources, radius


def test_masked_scaling_sweep():
    from repro.vector import available_backends

    backends = available_backends()
    points = []
    for n in _sweep_ns():
        graph, tree, sources, radius = _sweep_cell(n)
        seeds = [
            derive_seed(ROOT_SEED, "bench-scale-masked", n, index)
            for index in range(SWEEP_REPLICATIONS)
        ]

        unmasked = BatchCollection(
            graph, tree, sources, seeds, reception="sparse", mask="off"
        )
        assert not unmasked.masked
        for _ in range(SWEEP_WARMUP):
            unmasked.step()
        unmasked_seconds = _timed_window(unmasked, SWEEP_WINDOW)
        unmasked_rate = SWEEP_REPLICATIONS * SWEEP_WINDOW / unmasked_seconds

        masked_rates = {}
        occupancy = None
        for backend in backends:
            masked = BatchCollection(
                graph, tree, sources, seeds,
                reception="sparse", mask="on", backend=backend,
            )
            assert masked.masked
            # The auto threshold must turn the mask on by itself at
            # every sweep size.
            auto = BatchCollection(
                graph, tree, sources, seeds[:1], mask="auto"
            )
            assert auto.masked
            for _ in range(SWEEP_WARMUP):
                masked.step()
            masked_seconds = _timed_window(masked, SWEEP_WINDOW)
            masked_rates[backend] = (
                SWEEP_REPLICATIONS * SWEEP_WINDOW / masked_seconds
            )
            if backend == "numpy":
                occupancy = masked.awake_occupancy
        best_rate = max(masked_rates.values())
        speedup = best_rate / unmasked_rate
        points.append({
            "n": n,
            "radius": round(radius, 6),
            "stations": graph.num_nodes,
            "edges": graph.num_edges,
            "max_degree": graph.max_degree(),
            "k": sum(len(v) for v in sources.values()),
            "replications": SWEEP_REPLICATIONS,
            "window_slots": SWEEP_WINDOW,
            "awake_occupancy": round(float(occupancy), 8),
            "unmasked_slots_per_sec": round(unmasked_rate, 3),
            "masked_slots_per_sec": {
                name: round(rate, 3) for name, rate in masked_rates.items()
            },
            "speedup": round(speedup, 2),
        })
        print(
            f"\nSCALE100K n={n}: unmasked {unmasked_rate:.1f} "
            f"rep·slots/s, masked {best_rate:.1f} rep·slots/s "
            f"({speedup:.1f}x, occupancy {occupancy:.2e})"
        )

    largest = max(points, key=lambda p: p["n"])
    summary = {
        "experiment": "SCALE100K",
        "title": "active-set masked loop vs unmasked sparse lockstep",
        "seed": ROOT_SEED,
        "backends": list(backends),
        "sweep": points,
        "n": largest["n"],
        "speedup": largest["speedup"],
        "awake_occupancy": largest["awake_occupancy"],
        "min_speedup": MIN_MASKED_SPEEDUP,
    }
    out = bench_results_dir() / "BENCH_SCALE100K.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"SCALE100K sweep -> {out}")

    # The occupancy is what the speedup cashes in: a few dozen awake
    # pairs against B·n slots of full-width work.
    assert 0.0 < largest["awake_occupancy"] < 0.05
    if largest["n"] >= SWEEP_NS[-1]:
        assert largest["speedup"] >= MIN_MASKED_SPEEDUP, (
            f"masked loop only {largest['speedup']:.1f}x faster than the "
            f"unmasked sparse loop at n={largest['n']} "
            f"(floor {MIN_MASKED_SPEEDUP}x)"
        )
