"""ES — large-n scaling: sparse CSR reception vs the dense adjacency product.

Not a paper claim — the capacity statement behind ``--reception sparse``:
at n = 10⁴ stations on a unit-disk field (the canonical radio topology),
the dense kernel pays O(B·n²) work and a ~400 MB float32 adjacency per
batch regardless of how few stations transmit, while the CSR scatter
pays O(transmitters·degree).  This bench times both kernels on an
*identical* slot window of one collection batch, asserts their
trajectories stayed bit-identical, and records the throughput ratio in
``benchmarks/results/BENCH_SCALE.json`` (regression-gated by
``benchmarks/check_regression.py`` against ``benchmarks/floors.json``).

The window is deliberately short: the dense kernel needs ~1 GFLOP per
slot at this size, and a dozen slots is plenty to time it; the sparse
kernel's advantage only grows with run length.
"""

import json
import random
import time

import numpy as np
from conftest import ROOT_SEED, bench_results_dir

from repro.graphs import random_geometric, reference_bfs_tree
from repro.rng import derive_seed
from repro.vector.collection import BatchCollection
from repro.vector.engine import LockstepRadio

#: The benchmark cell: a connected unit-disk field with n = 10_000
#: stations (radius tuned for mean degree ~10, Δ ≈ 25).
N = 10_000
RADIUS = 0.018
K = 32
REPLICATIONS = 4
#: Untimed warm-up slots: fills the amortized coin block (identical in
#: both runs) so a refill that serves 256 data slots is not charged to
#: a 12-slot timing window.
WARMUP = 4
#: Slots timed per kernel (identical window, identical coins).
WINDOW = 12
#: Acceptance floor: sparse must beat dense by at least this factor.
MIN_SPEEDUP = 5.0


def _cell():
    graph = random_geometric(N, RADIUS, random.Random(ROOT_SEED))
    tree = reference_bfs_tree(graph, 0)
    deepest_level = max(tree.level.values())
    deepest = sorted(
        v for v in tree.nodes if tree.level[v] == deepest_level
    )[:K]
    sources = {v: [f"m{v}"] for v in deepest}
    return graph, tree, sources


def _batch_state(sim):
    return (
        sim.backlog.copy(),
        sim.head.copy(),
        sim.delivered_count.copy(),
        sim.pending_child.copy(),
        sim.pending_msg.copy(),
        sim.done.copy(),
    )


def _timed_window(sim, slots):
    started = time.perf_counter()
    for _ in range(slots):
        sim.step()
    return time.perf_counter() - started


def test_sparse_kernel_scaling():
    graph, tree, sources = _cell()
    seeds = [
        derive_seed(ROOT_SEED, "bench-scale", index)
        for index in range(REPLICATIONS)
    ]

    sparse = BatchCollection(graph, tree, sources, seeds, reception="sparse")
    dense = BatchCollection(graph, tree, sources, seeds, reception="dense")
    assert sparse.radio.reception == "sparse"
    assert dense.radio.reception == "dense"
    # The auto heuristic must pick sparse at this size on its own.
    auto = LockstepRadio(graph, tree, 1, reception="auto")
    assert auto.reception == "sparse"

    for sim in (sparse, dense):
        for _ in range(WARMUP):
            sim.step()
    sparse_seconds = _timed_window(sparse, WINDOW)
    dense_seconds = _timed_window(dense, WINDOW)

    # Same seeds, same coins, bit-identical kernels: after the identical
    # window the two batch states must agree exactly.
    for a, b in zip(_batch_state(sparse), _batch_state(dense)):
        assert np.array_equal(a, b)
    assert sparse.slot == dense.slot == WARMUP + WINDOW

    sparse_rate = REPLICATIONS * WINDOW / sparse_seconds
    dense_rate = REPLICATIONS * WINDOW / dense_seconds
    speedup = sparse_rate / dense_rate
    nnz = int(sparse.radio.indices.size)
    summary = {
        "experiment": "SCALE",
        "title": "sparse CSR reception vs dense adjacency product",
        "cell": {
            "topology": f"rgg-{N}",
            "stations": graph.num_nodes,
            "edges": nnz // 2,
            "density": round(nnz / (N * N), 6),
            "max_degree": graph.max_degree(),
            "k": sum(len(v) for v in sources.values()),
            "replications": REPLICATIONS,
            "window_slots": WINDOW,
            "seed": ROOT_SEED,
        },
        "dense": {
            "seconds": round(dense_seconds, 3),
            "replication_slots_per_sec": round(dense_rate, 3),
        },
        "sparse": {
            "seconds": round(sparse_seconds, 3),
            "replication_slots_per_sec": round(sparse_rate, 3),
        },
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "auto_resolution": auto.reception,
    }
    out = bench_results_dir() / "BENCH_SCALE.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(summary, indent=2) + "\n")
    print(
        f"\nES: dense {dense_rate:.2f} rep·slots/s, sparse "
        f"{sparse_rate:.2f} rep·slots/s, speedup {speedup:.1f}x -> {out}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"sparse kernel only {speedup:.1f}x faster than dense at n={N} "
        f"(floor {MIN_SPEEDUP}x)"
    )
