"""SCENARIO — the DSL's compile + dispatch overhead must be noise.

The scenario layer's contract is that declaring an experiment as data
costs (almost) nothing over invoking the registry directly: a
registry-twin spec compiles to the *identical* task list, so the only
extra work is parse + validate + compile.  This bench measures both
paths end-to-end on the E3-sized grid (100 tasks) against a warm cache
— cache replay isolates the orchestration overhead from protocol
wall time, which is identical by construction — and gates

    ``efficiency`` = direct registry time / scenario DSL time

in floors.json (per-entry tolerance: the floor is ≤5% overhead, far
tighter than the global 20% band).  The twin-identity assertion rides
along: same tasks, same cache keys, 100% hits for both paths.
"""

import json
import textwrap
import time

from conftest import ROOT_SEED, bench_results_dir

from repro.runner import run_experiment
from repro.scenario import compile_scenario, parse_scenario, run_scenario

EXP_ID = "E3"
#: Enough replications that the fixed parse+validate+compile cost is
#: measured against a realistic sweep (~20ms replay), not a 5ms one
#: where scheduler jitter alone is worth 5%.
REPLICATIONS = 20
#: Timing repetitions; the best of each side is compared (minimum wall
#: time is the standard low-noise estimator for sub-second kernels).
ROUNDS = 5


def _twin_spec(tmp_path):
    path = tmp_path / "e3_twin.toml"
    path.write_text(textwrap.dedent(f"""
        [scenario]
        name = "bench-e3-twin"
        title = "E3 twin for the dispatch-overhead bench"

        [registry]
        experiment = "{EXP_ID}"

        [run]
        seed = {ROOT_SEED}
        replications = {REPLICATIONS}
    """))
    return path


def _time_direct(cache) -> float:
    start = time.perf_counter()
    report = run_experiment(
        EXP_ID,
        seed=ROOT_SEED,
        replications=REPLICATIONS,
        workers=0,
        cache=cache,
    )
    elapsed = time.perf_counter() - start
    assert report.cache_hits == len(report.outcomes)
    return elapsed


def _time_scenario(spec_path, cache) -> float:
    start = time.perf_counter()
    compiled = compile_scenario(parse_scenario(spec_path))
    report = run_scenario(compiled, workers=0, cache=cache)
    elapsed = time.perf_counter() - start
    assert report.cache_hits == len(report.outcomes)
    return elapsed


def test_scenario_dispatch_overhead(tmp_path, benchmark):
    cache = tmp_path / "cache"
    spec_path = _twin_spec(tmp_path)

    # Twin identity first: same tasks, same cache keys.
    compiled = compile_scenario(parse_scenario(spec_path))
    from repro.runner import get_experiment

    direct_tasks = get_experiment(EXP_ID).tasks(ROOT_SEED, REPLICATIONS)
    assert compiled.tasks == direct_tasks

    # Warm the cache once (either path would do — the keys agree).
    cold = run_experiment(
        EXP_ID, seed=ROOT_SEED, replications=REPLICATIONS,
        workers=0, cache=cache,
    )
    assert cold.executed == len(cold.outcomes)

    # Interleave the timed rounds so drift hits both sides equally.
    direct_times, scenario_times = [], []
    for _ in range(ROUNDS):
        direct_times.append(_time_direct(cache))
        scenario_times.append(_time_scenario(spec_path, cache))
    direct_best = min(direct_times)
    scenario_best = min(scenario_times)
    efficiency = direct_best / scenario_best
    overhead_pct = (scenario_best / direct_best - 1.0) * 100.0

    summary = {
        "exp_id": "SCENARIO",
        "grid": EXP_ID,
        "tasks": len(direct_tasks),
        "rounds": ROUNDS,
        "direct_seconds": direct_best,
        "scenario_seconds": scenario_best,
        "efficiency": efficiency,
        "overhead_pct": overhead_pct,
    }
    out = bench_results_dir() / "BENCH_SCENARIO.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(
        f"SCENARIO: direct {direct_best * 1e3:.1f}ms vs scenario "
        f"{scenario_best * 1e3:.1f}ms on {len(direct_tasks)} tasks -> "
        f"efficiency {efficiency:.3f} (overhead {overhead_pct:+.1f}%)"
    )
    # The spec-compile layer must stay within a few percent of direct
    # invocation; the committed floor in floors.json gates the summary.
    assert efficiency >= 0.80, summary  # hard sanity floor for CI noise

    benchmark(lambda: _time_scenario(spec_path, cache))
