"""E10 — the paper's protocols vs the pre-paper baselines.

Three head-to-head comparisons, each reproducing a "who wins, by what
factor, where is the crossover" claim:

1. **Collection vs round-robin TDMA** — the randomized pipeline pays
   O(log Δ) per frame instead of O(n): Decay wins increasingly with n,
   TDMA only competes when n is tiny.
2. **Pipelined point-to-point vs sequential store-and-forward**
   (Chlamtac–Kutten-style, §1.3) — sequential pays k·D; pipelining pays
   (k + D)·log Δ.  Crossover in k: for a single message the conflict-free
   sequential walk is cheaper, for k ≫ 1 pipelining wins by ~D/log Δ.
3. **Pipelined broadcast vs k sequential BGI floods** (§6's motivating
   comparison) — sequential pays k·D·logΔ·logn, pipelined (k+D)·logΔ·logn.
"""

import random

from conftest import replication_seeds

from repro.analysis import print_table, summarize
from repro.baselines import (
    run_naive_broadcast,
    run_sequential_p2p,
    run_tdma_collection,
)
from repro.core import run_broadcast, run_collection, run_point_to_point
from repro.graphs import path, random_geometric, reference_bfs_tree


def mean(fn, name, reps=3):
    return summarize(
        [float(fn(seed)) for seed in replication_seeds(name, reps)]
    ).mean


def test_e10a_collection_vs_tdma(benchmark):
    """Two deterministic competitors: naive round-robin TDMA (frame n) and
    spatial-reuse TDMA via a distance-2 coloring.

    Findings (both matter for reading the paper honestly):

    * Against anything *computable within the model's knowledge* (IDs, n,
      Δ — hence the naive frame-n schedule), Decay wins and the gap grows
      linearly in n.
    * Given an **offline-compiled global schedule** (the distance-2
      coloring — knowledge no station has in the model), deterministic
      spatial TDMA beats Decay outright at these scales: a Δ-ish frame
      moves *every* backlogged station one hop with zero collisions and
      no ack machinery.  That is exactly the trade the paper's related
      work exposes: Chlamtac–Weinstein [8] compute such schedules
      centrally, at a "quadratic in the number of nodes" message cost to
      distribute (§1.3).  The paper's randomized protocols pay a log
      factor in slots to need *no compilation at all* — the right story
      is "no-setup randomized vs compiled deterministic", not "randomized
      beats everything".  The Δ sweep shows the compiled schedule's edge
      shrinking as density grows (frame ~Δ vs Decay's log Δ machinery).
    """
    from repro.baselines import run_spatial_tdma_collection

    rows = []
    for n in (8, 16, 32, 64):
        graph = path(n)
        tree = reference_bfs_tree(graph, 0)
        k = 8
        sources = {n - 1: [f"m{i}" for i in range(k)]}
        decay_slots = mean(
            lambda s: run_collection(graph, tree, sources, seed=s).slots,
            f"e10a-decay-{n}",
        )
        tdma_slots = float(
            run_tdma_collection(graph, tree, sources).slots
        )
        spatial = run_spatial_tdma_collection(graph, tree, sources)
        rows.append(
            [
                n,
                k,
                decay_slots,
                tdma_slots,
                float(spatial.slots),
                tdma_slots / decay_slots,
            ]
        )
    print_table(
        [
            "n",
            "k",
            "Decay",
            "TDMA (frame n)",
            "TDMA d2 (frame Δ²)",
            "naive/Decay",
        ],
        rows,
        title="E10a: randomized collection vs deterministic TDMA (path-n)",
    )
    # Naive TDMA's relative cost grows with n; Decay wins at scale.
    assert rows[-1][5] > rows[0][5]
    assert rows[-1][5] > 1.5

    # The Δ sweep: spatial TDMA's frame grows with Δ², Decay's with log Δ.
    delta_rows = []
    for radius, tag in ((0.3, "sparse"), (0.55, "dense")):
        graph = random_geometric(28, radius, random.Random(7))
        tree = reference_bfs_tree(graph, 0)
        sources = {
            node: ["m"] for node in list(graph.nodes)[1:13]
        }
        decay_slots = mean(
            lambda s: run_collection(graph, tree, sources, seed=s).slots,
            f"e10a-rgg-{tag}",
        )
        spatial = run_spatial_tdma_collection(graph, tree, sources)
        delta_rows.append(
            [
                f"rgg-28 {tag}",
                graph.max_degree(),
                spatial.frame_length,
                decay_slots,
                float(spatial.slots),
                spatial.slots / decay_slots,
            ]
        )
    print_table(
        ["topology", "Δ", "d2 colors", "Decay", "TDMA d2", "d2/Decay"],
        delta_rows,
        title="E10a2: spatial TDMA's Δ² frames vs Decay's log Δ phases",
    )
    # Denser network → relatively better for Decay.
    assert delta_rows[1][5] > delta_rows[0][5]

    graph = path(16)
    tree = reference_bfs_tree(graph, 0)
    benchmark(
        lambda: run_tdma_collection(graph, tree, {15: ["m"] * 4}).slots
    )


def test_e10b_p2p_vs_sequential(benchmark):
    """Sequential pays k·(path length); pipelining pays (k+D)·log Δ.  The
    crossover therefore needs D ≫ log Δ: on a deep path, sequential wins
    only the single-message case and pipelining wins by ~D/log Δ at
    large k."""
    n = 96
    graph = path(n)
    tree = reference_bfs_tree(graph, 0)
    tree.assign_dfs_intervals()
    nodes = list(graph.nodes)
    rng = random.Random(5)
    rows = []
    crossover = None
    for k in (1, 4, 16, 64):
        batch = []
        while len(batch) < k:
            u, v = rng.choice(nodes), rng.choice(nodes)
            if abs(u - v) > n // 3:  # long-haul traffic
                batch.append((u, v, len(batch)))
        pipelined = mean(
            lambda s: run_point_to_point(graph, tree, batch, seed=s).slots,
            f"e10b-{k}",
        )
        sequential = float(run_sequential_p2p(graph, tree, batch).slots)
        ratio = sequential / pipelined
        rows.append([k, pipelined, sequential, ratio])
        if ratio > 1 and crossover is None:
            crossover = k
    print_table(
        ["k", "pipelined slots", "sequential slots", "seq/pipe"],
        rows,
        title="E10b: pipelined p2p vs sequential forwarding (path-96)",
    )
    # Single message: the conflict-free sequential walk is cheaper.
    assert rows[0][3] < 1.0
    # Large batches: pipelining wins decisively, advantage growing with k.
    assert crossover is not None and crossover <= 64
    assert rows[-1][3] > 2.0
    assert rows[-1][3] > rows[0][3]

    batch = [(nodes[0], nodes[-1], 0)]
    benchmark(lambda: run_sequential_p2p(graph, tree, batch).slots)


def test_e10c_broadcast_vs_sequential_floods(benchmark):
    """§6's motivating comparison.  Per message, a sequential whp flood
    costs ~D·log Δ-ish slots while the pipeline costs one superphase
    (~log Δ·log n slots): pipelining wins exactly when D ≫ log n, and the
    advantage grows with both k and D.  The flood baseline is charged its
    whp schedule (a real radio network cannot detect flood completion)."""
    from repro.baselines import staged_flood_slots

    rows = []
    staged_ratio = {}
    for n in (12, 64):
        graph = path(n)
        tree = reference_bfs_tree(graph, 0)
        staged_per_message = staged_flood_slots(
            n - 1, n, graph.max_degree()
        )
        for k in (2, 8, 16):
            pipelined = mean(
                lambda s: run_broadcast(
                    graph, tree, {0: [f"m{i}" for i in range(k)]}, seed=s
                ).slots,
                f"e10c-{n}-{k}",
                reps=2,
            )
            staged = float(k * staged_per_message)
            whp_flood = mean(
                lambda s: run_naive_broadcast(graph, 0, k, seed=s).fair_slots,
                f"e10c-naive-{n}-{k}",
                reps=2,
            )
            rows.append(
                [n, n - 1, k, pipelined, staged, whp_flood, staged / pipelined]
            )
            staged_ratio[(n, k)] = staged / pipelined
    print_table(
        [
            "n",
            "D",
            "k",
            "pipelined",
            "k staged floods",
            "k whp floods",
            "staged/pipelined",
        ],
        rows,
        title="E10c: pipelined broadcast vs non-pipelined floods",
    )
    # Against the paper's baseline (staged floods, §6's 2·D·logΔ·logn per
    # message): single/few messages favour the flood (no pipeline fill)...
    assert staged_ratio[(64, 2)] < 1.0
    # ...but the advantage grows with k toward ~min(k, D)×, and grows with
    # D at fixed k; pipelining wins decisively on the deep network.
    assert staged_ratio[(64, 16)] > staged_ratio[(64, 2)]
    assert staged_ratio[(64, 16)] > staged_ratio[(12, 16)]
    assert staged_ratio[(64, 16)] > 2.0

    benchmark(lambda: run_naive_broadcast(path(8), 0, 1, seed=4).slots)
