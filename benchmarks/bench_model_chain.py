"""E4 — the model reduction chain (§4.2, Thm 4.15 + Lemmas 4.10/4.11).

``E[T(model 1)] ≤ E[T(model 2)] ≤ E[T(model 3)] ≤ E[T(model 4)]``

Model 1 is the real radio protocol (collection on a depth-D path, measured
in Decay phases); models 2–4 are the tandem-queue abstractions with
service probability exactly µ; model 4's expectation also has Theorem
4.3's closed form.  Matched (k, D, µ, λ*) across the chain.
"""

from conftest import replication_seeds

from repro.analysis import print_table, summarize
from repro.core import MU, run_collection
from repro.core.collection import LAMBDA_STAR
from repro.graphs import path, reference_bfs_tree
from repro.queueing import (
    model4_prediction,
    radio_completion_phases,
    simulate_model2,
    simulate_model3,
    simulate_model4,
)
import random


def radio_phases(depth: int, k: int, seed: int) -> int:
    graph = path(depth + 1)
    tree = reference_bfs_tree(graph, 0)
    sources = {depth: [f"m{i}" for i in range(k)]}
    result = run_collection(graph, tree, sources, seed)
    return radio_completion_phases(
        result.slots, result.slot_structure.phase_length
    )


def test_e4_model_chain(benchmark):
    rows = []
    reps = 60
    tandem_reps = 400
    for depth, k in [(5, 4), (10, 8), (15, 4)]:
        seeds = replication_seeds(f"e4-{depth}-{k}", reps)
        t1 = summarize(
            [float(radio_phases(depth, k, s)) for s in seeds]
        ).mean
        t2 = summarize(
            [
                float(
                    simulate_model2(
                        (0,) * (depth - 1) + (k,), MU, random.Random(s)
                    ).steps
                )
                for s in replication_seeds(f"e4m2-{depth}-{k}", tandem_reps)
            ]
        ).mean
        t3 = summarize(
            [
                float(
                    simulate_model3(
                        k, depth, MU, LAMBDA_STAR, random.Random(s)
                    ).steps
                )
                for s in replication_seeds(f"e4m3-{depth}-{k}", tandem_reps)
            ]
        ).mean
        t4 = summarize(
            [
                float(
                    simulate_model4(
                        k, depth, MU, LAMBDA_STAR, random.Random(s)
                    ).steps
                )
                for s in replication_seeds(f"e4m4-{depth}-{k}", tandem_reps)
            ]
        ).mean
        closed_form = model4_prediction(k, depth, mu=MU, lam=LAMBDA_STAR)
        if depth * k <= 40:
            # Third leg: the exact absorbing-Markov-chain value for
            # model 3 (linear algebra, no randomness).
            from repro.queueing import expected_completion_model3_exact

            t3_exact = expected_completion_model3_exact(
                k, depth, MU, LAMBDA_STAR
            )
            assert abs(t3 - t3_exact) / t3_exact < 0.08, (t3, t3_exact)
        else:
            t3_exact = float("nan")
        rows.append([depth, k, t1, t2, t3, t3_exact, t4, closed_form])
        slack = 1.05  # Monte-Carlo noise allowance
        assert t1 <= t2 * slack, (depth, k, t1, t2)
        assert t2 <= t3 * slack, (depth, k, t2, t3)
        assert t3 <= t4 * slack, (depth, k, t3, t4)
        assert abs(t4 - closed_form) / closed_form < 0.12
    print_table(
        [
            "D",
            "k",
            "T1 radio",
            "T2 placed",
            "T3 arrivals",
            "T3 exact",
            "T4 steady",
            "Thm 4.3",
        ],
        rows,
        title="E4: expected completion (phases) along the model chain",
    )
    benchmark(lambda: radio_phases(5, 4, seed=3))
