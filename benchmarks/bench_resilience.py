"""E16 — Resilience: collection under churn, fading, jamming and partition.

Outside the paper: the model of §1.1 is failure-free, so Theorem 4.4's
"always successful" collection has no stated behaviour under faults.  This
experiment measures what the hardened stack (``core/repair.py``) restores:
delivery ratio and completion-time inflation versus the failure-free
baseline for each fault scenario, plus repair counts and
partition-detection accuracy.

Qualitative claims asserted:

* under link faults and recoverable churn the repaired protocol still
  delivers everything (the Las-Vegas property survives, only time degrades);
* under a severing partition, the reachable side still delivers fully and
  the run terminates with a partition report rather than a timeout;
* the failure-free baseline through the hardened stack matches plain
  collection (the hardening is free when nothing fails).
"""

from conftest import replication_seeds, run_experiment_for_bench

from repro.analysis import print_table, scenario_metrics
from repro.core import run_collection, run_resilient_collection
from repro.graphs import layered_band, path, reference_bfs_tree
from repro.runner.defs import E16_SCENARIOS


def _sources(tree, k=4):
    deepest = max(tree.nodes, key=lambda v: (tree.level[v], v))
    mid = min(
        (v for v in tree.nodes if 0 < tree.level[v] < tree.depth),
        default=deepest,
    )
    return {deepest: [f"m{i}" for i in range(k)], mid: ["n0", "n1"]}


def test_e16_resilience_suite(benchmark):
    report = run_experiment_for_bench("E16", replications=3)
    by_scenario = {}
    for outcomes in report.grouped().values():
        by_scenario[outcomes[0].spec.params["scenario"]] = outcomes

    for scenario, outcomes in by_scenario.items():
        for outcome in outcomes:
            metrics = outcome.metrics
            seed = outcome.spec.seed
            # Any fault class: never hang — a run either drains or reports.
            assert not metrics["timed_out"], (scenario, seed)
            # Link faults and recoverable outages: correctness survives,
            # only running time degrades (delivery stays total).
            if scenario in ("fading", "jammer", "churn", "blackout"):
                assert metrics["delivery_ratio"] == 1.0, (scenario, seed)
            # Partition: everything reachable still arrives (repair routes
            # around the dead station wherever the graph allows).
            assert metrics["reachable_delivery_ratio"] == 1.0, (
                scenario,
                seed,
            )
            assert metrics["partition_precision"] == 1.0, (scenario, seed)

    # Aggregate across seeds: mean slowdown per scenario.
    rows = []
    for scenario in E16_SCENARIOS:
        outcomes = by_scenario[scenario]
        mean = lambda name: sum(
            o.metrics[name] for o in outcomes
        ) / len(outcomes)
        rows.append(
            [
                scenario,
                f"{mean('delivery_ratio'):.2f}",
                f"{mean('slowdown'):.2f}x",
                f"{mean('repairs'):.1f}",
                f"{mean('partition_precision'):.2f}"
                f"/{mean('partition_recall'):.2f}",
            ]
        )
    print_table(
        ["scenario", "delivery ratio", "slowdown", "repairs", "part P/R"],
        rows,
        title="E16: means over seeds (layered_band 6x3)",
    )

    seed = replication_seeds("e16-kernel", 1)[0]
    benchmark(lambda: scenario_metrics("fading", seed))


def test_e16_true_partition_terminates_structurally():
    """On a path there is no detour: orphans must declare, not hang."""
    graph = path(8)
    tree = reference_bfs_tree(graph, 0)
    from repro.radio.failures import RegionOutage

    for seed in replication_seeds("e16-partition", 3):
        result = run_resilient_collection(
            graph,
            tree,
            {7: ["a", "b"], 2: ["c"]},
            seed=seed,
            failures=RegionOutage([3], start=0, end=None),
            down_grace_slots=2_000,
        )
        assert not result.timed_out
        assert result.partition_detected
        # Ground truth: everything past the dead station is unreachable.
        assert set(result.unreachable) == {3, 4, 5, 6, 7}
        assert set(result.declared_partitioned) <= {4, 5, 6, 7}
        # The reachable side is untouched.
        assert result.reachable_delivery_ratio == 1.0


def test_e16_hardening_is_free_without_faults():
    """Failure-free: the resilient stack costs nothing measurable."""
    graph = layered_band(5, 3)
    tree = reference_bfs_tree(graph, 0)
    sources = _sources(tree)
    rows = []
    for seed in replication_seeds("e16-baseline", 3):
        plain = run_collection(graph, tree, sources, seed=seed)
        hardened = run_resilient_collection(graph, tree, sources, seed=seed)
        assert hardened.delivery_ratio == 1.0
        assert not hardened.repairs
        rows.append([seed, plain.slots, hardened.slots])
        # Identical seeds drive identical Decay coin flips; the hardened
        # run may only differ by backoff phases, bounded well under 2x.
        assert hardened.slots <= 2 * plain.slots
    print_table(
        ["seed", "plain slots", "hardened slots"],
        rows,
        title="E16b: failure-free cost of the hardened stack",
    )
