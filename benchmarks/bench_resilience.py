"""E16 — Resilience: collection under churn, fading, jamming and partition.

Outside the paper: the model of §1.1 is failure-free, so Theorem 4.4's
"always successful" collection has no stated behaviour under faults.  This
experiment measures what the hardened stack (``core/repair.py``) restores:
delivery ratio and completion-time inflation versus the failure-free
baseline for each fault scenario, plus repair counts and
partition-detection accuracy.

Qualitative claims asserted:

* under link faults and recoverable churn the repaired protocol still
  delivers everything (the Las-Vegas property survives, only time degrades);
* under a severing partition, the reachable side still delivers fully and
  the run terminates with a partition report rather than a timeout;
* the failure-free baseline through the hardened stack matches plain
  collection (the hardening is free when nothing fails).
"""

from conftest import replication_seeds

from repro.analysis import (
    print_table,
    resilience_table,
    run_resilience_suite,
    standard_scenarios,
)
from repro.core import run_collection, run_resilient_collection
from repro.graphs import layered_band, path, reference_bfs_tree


def _sources(tree, k=4):
    deepest = max(tree.nodes, key=lambda v: (tree.level[v], v))
    mid = min(
        (v for v in tree.nodes if 0 < tree.level[v] < tree.depth),
        default=deepest,
    )
    return {deepest: [f"m{i}" for i in range(k)], mid: ["n0", "n1"]}


def test_e16_resilience_suite(benchmark):
    graph = layered_band(6, 3)
    tree = reference_bfs_tree(graph, 0)
    sources = _sources(tree)
    all_reports = []
    for seed in replication_seeds("e16-suite", 3):
        reports = run_resilience_suite(
            graph, tree, sources, seed=seed, down_grace_slots=2_000
        )
        all_reports.append(reports)
        for report in reports:
            result = report.result
            # Any fault class: never hang — a run either drains or reports.
            assert not result.timed_out, (report.scenario, seed)
            # Link faults and recoverable outages: correctness survives,
            # only running time degrades (delivery stays total).
            if report.scenario in ("fading", "jammer", "churn", "blackout"):
                assert report.delivery_ratio == 1.0, (report.scenario, seed)
            # Partition: everything reachable still arrives (repair routes
            # around the dead station wherever the graph allows).
            assert report.reachable_delivery_ratio == 1.0, (
                report.scenario,
                seed,
            )
            assert result.partition_precision == 1.0, (report.scenario, seed)
    print(resilience_table(all_reports[0]))

    # Aggregate across seeds: mean slowdown per scenario.
    rows = []
    for idx, scenario in enumerate(standard_scenarios()):
        slowdowns = [reports[idx].slowdown for reports in all_reports]
        ratios = [reports[idx].delivery_ratio for reports in all_reports]
        repairs = [reports[idx].repairs for reports in all_reports]
        rows.append(
            [
                scenario.name,
                f"{sum(ratios) / len(ratios):.2f}",
                f"{sum(slowdowns) / len(slowdowns):.2f}x",
                f"{sum(repairs) / len(repairs):.1f}",
            ]
        )
    print_table(
        ["scenario", "delivery ratio", "slowdown", "repairs"],
        rows,
        title="E16: means over seeds (layered_band 6x3)",
    )

    seed = replication_seeds("e16-kernel", 1)[0]
    benchmark(
        lambda: run_resilience_suite(
            graph, tree, sources, seed=seed, down_grace_slots=2_000
        )
    )


def test_e16_true_partition_terminates_structurally():
    """On a path there is no detour: orphans must declare, not hang."""
    graph = path(8)
    tree = reference_bfs_tree(graph, 0)
    from repro.radio.failures import RegionOutage

    for seed in replication_seeds("e16-partition", 3):
        result = run_resilient_collection(
            graph,
            tree,
            {7: ["a", "b"], 2: ["c"]},
            seed=seed,
            failures=RegionOutage([3], start=0, end=None),
            down_grace_slots=2_000,
        )
        assert not result.timed_out
        assert result.partition_detected
        # Ground truth: everything past the dead station is unreachable.
        assert set(result.unreachable) == {3, 4, 5, 6, 7}
        assert set(result.declared_partitioned) <= {4, 5, 6, 7}
        # The reachable side is untouched.
        assert result.reachable_delivery_ratio == 1.0


def test_e16_hardening_is_free_without_faults():
    """Failure-free: the resilient stack costs nothing measurable."""
    graph = layered_band(5, 3)
    tree = reference_bfs_tree(graph, 0)
    sources = _sources(tree)
    rows = []
    for seed in replication_seeds("e16-baseline", 3):
        plain = run_collection(graph, tree, sources, seed=seed)
        hardened = run_resilient_collection(graph, tree, sources, seed=seed)
        assert hardened.delivery_ratio == 1.0
        assert not hardened.repairs
        rows.append([seed, plain.slots, hardened.slots])
        # Identical seeds drive identical Decay coin flips; the hardened
        # run may only differ by backoff phases, bounded well under 2x.
        assert hardened.slots <= 2 * plain.slots
    print_table(
        ["seed", "plain slots", "hardened slots"],
        rows,
        title="E16b: failure-free cost of the hardened stack",
    )
