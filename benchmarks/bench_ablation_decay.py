"""E12 — ablation of the Decay retransmission policy.

Two axes:

1. **Repetition budget**: the paper uses 2·ceil(log2 Δ) transmission
   opportunities per invocation.  Halving it hurts the single-window
   success probability (below the 1/2 guarantee for large contention);
   doubling it wastes slots without improving per-phase success much
   (a dead station cannot come back, so the tail opportunities are
   mostly silent).
2. **Policy**: Decay's geometric back-off vs fixed-probability slotted
   ALOHA at p = 1/Δ over the same window.  **Finding:** each wins its
   regime.  Under *saturated* contention (m ≈ Δ persistently, e.g. every
   leaf of a star transmitting), ALOHA's tuned p ≈ 1/m gives ~1/e success
   *per slot* and never falls silent, beating Decay's per-window ≥ 1/2.
   Under *sparse* contention (m ≪ Δ — the normal state of a tree pipeline
   after the initial burst drains), ALOHA over-throttles: a lone sender
   transmits only w.p. 1/Δ per slot while Decay succeeds immediately, and
   end-to-end collection shows the reversal.  Decay's virtue is exactly
   what the paper claims: a guarantee for *all* m with no knowledge of m.
"""

import math
import random

from conftest import replication_seeds

from repro.analysis import print_table, summarize
from repro.baselines import aloha_session_factory, aloha_success_probability
from repro.core import (
    decay_budget,
    run_collection,
    success_probability_exact,
)
from repro.core.collection import build_collection_network
from repro.graphs import layered_band, reference_bfs_tree, star


def test_e12a_budget_sweep_single_window(benchmark):
    rows = []
    max_degree = 32
    paper_budget = decay_budget(max_degree)
    for factor, budget in [
        (0.5, paper_budget // 2),
        (1.0, paper_budget),
        (2.0, 2 * paper_budget),
    ]:
        worst = min(
            float(success_probability_exact(m, budget))
            for m in (2, 4, 8, 16, 32)
        )
        rows.append([factor, budget, worst, "yes" if worst >= 0.5 else "NO"])
    print_table(
        ["budget factor", "slots/window", "worst-case P[hear]", "≥ 1/2"],
        rows,
        title=f"E12a: Decay budget sweep, Δ = {max_degree}",
    )
    # The paper's budget is the knee: half loses the guarantee, double
    # buys < 4 percentage points.
    half = min(
        float(success_probability_exact(m, paper_budget // 2))
        for m in (2, 4, 8, 16, 32)
    )
    full = min(
        float(success_probability_exact(m, paper_budget))
        for m in (2, 4, 8, 16, 32)
    )
    double = min(
        float(success_probability_exact(m, 2 * paper_budget))
        for m in (2, 4, 8, 16, 32)
    )
    assert half < 0.5 <= full
    assert double - full < 0.04
    benchmark(lambda: success_probability_exact(16, paper_budget))


def collection_with_policy(graph, tree, sources, seed, policy):
    """End-to-end collection slots under a retransmission policy."""
    network, processes, slots = build_collection_network(
        graph, tree, sources, seed
    )
    if policy == "aloha":
        p = 1.0 / max(2, graph.max_degree())
        for node, process in processes.items():
            process.lane._session_factory = aloha_session_factory(
                p, random.Random((seed << 8) ^ hash(node))
            )
    total = sum(len(v) for v in sources.values())
    root = processes[tree.root]
    network.run(
        2_000_000,
        until=lambda n: len(root.delivered) >= total
        and all(p.is_done() for p in processes.values()),
        check_every=4,
    )
    return network.slot


def test_e12b_decay_vs_aloha_end_to_end(benchmark):
    rows = []
    scenarios = [("star-17", star(17)), ("band-4x4", layered_band(4, 4))]
    for name, graph in scenarios:
        tree = reference_bfs_tree(graph, 0)
        sources = {
            n: ["m"] for n in graph.nodes if tree.level[n] == tree.depth
        }
        decay_mean = summarize(
            [
                float(
                    collection_with_policy(graph, tree, sources, s, "decay")
                )
                for s in replication_seeds(f"e12b-{name}-d", 4)
            ]
        ).mean
        aloha_mean = summarize(
            [
                float(
                    collection_with_policy(graph, tree, sources, s, "aloha")
                )
                for s in replication_seeds(f"e12b-{name}-a", 4)
            ]
        ).mean
        rows.append([name, decay_mean, aloha_mean, aloha_mean / decay_mean])
    print_table(
        ["topology", "Decay slots", "ALOHA(1/Δ) slots", "ALOHA/Decay"],
        rows,
        title="E12b: end-to-end collection, Decay vs fixed-p ALOHA",
    )
    # Each policy wins its regime (module docstring): ALOHA under the
    # saturated star (m ≈ Δ every phase), Decay once contention is sparse
    # (the band's interior hops drain to a few senders per parent).
    by_name = {row[0]: row[3] for row in rows}
    assert by_name["star-17"] < 1.0  # saturated: ALOHA faster
    assert by_name["band-4x4"] > 1.0  # sparse: Decay faster

    # Closed-form illustration of why: m = 1 contender under each policy.
    window = decay_budget(16)
    single_decay = float(success_probability_exact(1, window))
    single_aloha = aloha_success_probability(1, 1.0 / 16, window)
    assert single_decay == 1.0
    assert single_aloha < 0.5
    print_table(
        ["policy", "P[success | m=1, Δ=16]"],
        [["Decay", single_decay], ["ALOHA 1/Δ", single_aloha]],
        title="E12c: the lonely-transmitter case that dominates pipelines",
    )
    graph = star(9)
    tree = reference_bfs_tree(graph, 0)
    benchmark(
        lambda: collection_with_policy(
            graph, tree, {1: ["x"], 5: ["y"]}, 3, "decay"
        )
    )
