"""E5 — the §4.3 queueing closed forms vs simulation.

For a (λ, µ) grid of Bernoulli servers, compares:

* stationary queue-length distribution p_j (total-variation distance),
* mean queue length N̄ = λ(1−λ)/(µ−λ),
* sojourn time E(T) = (1−λ)/(µ−λ) (Little's result),
* departure process rate and geometric interdeparture gaps (Hsu–Burke).
"""

import random

from conftest import ROOT_SEED

from repro.analysis import (
    geometric_pmf,
    print_table,
    total_variation_distance,
)
from repro.queueing import (
    expected_queue_length,
    expected_sojourn_time,
    interdeparture_histogram,
    observe_single_server,
    stationary_distribution,
)


def test_e5_queueing_closed_forms(benchmark):
    rows = []
    steps = 120_000
    for lam, mu in [(0.05, 0.2), (0.1, 0.3), (0.12, 0.2325), (0.2, 0.5)]:
        obs = observe_single_server(
            lam, mu, steps=steps, rng=random.Random(ROOT_SEED)
        )
        predicted_n = expected_queue_length(lam, mu)
        predicted_t = expected_sojourn_time(lam, mu)
        tv_queue = total_variation_distance(
            [obs.empirical_p(j) for j in range(12)],
            stationary_distribution(lam, mu, j_max=11),
        )
        hist = interdeparture_histogram(obs, max_gap=40)
        tv_dep = total_variation_distance(
            [hist.get(g, 0.0) for g in range(1, 30)],
            [geometric_pmf(lam, g) for g in range(1, 30)],
        )
        rows.append(
            [
                lam,
                mu,
                obs.mean_queue_length,
                predicted_n,
                obs.mean_sojourn_time,
                predicted_t,
                obs.departure_rate,
                tv_queue,
                tv_dep,
            ]
        )
        assert abs(obs.mean_queue_length - predicted_n) / predicted_n < 0.12
        assert abs(obs.mean_sojourn_time - predicted_t) / predicted_t < 0.12
        assert abs(obs.departure_rate - lam) / lam < 0.05
        assert tv_queue < 0.03
        assert tv_dep < 0.04
    print_table(
        [
            "λ",
            "µ",
            "N̄ meas",
            "N̄ pred",
            "E(T) meas",
            "E(T) pred",
            "dep rate",
            "TV(p_j)",
            "TV(gaps)",
        ],
        rows,
        title="E5: Geo/Geo/1 closed forms vs simulation (Hsu–Burke)",
    )
    benchmark(
        lambda: observe_single_server(
            0.1, 0.3, steps=10_000, rng=random.Random(1)
        )
    )
