"""E3 — Theorem 4.4: k-collection completes in ≤ 32.27·(k+D)·log Δ slots.

Sweeps k and D across topology families and reports the measured constant
``slots / ((k + D)·log2 Δ)`` against the paper's 32.27 (the stated bound
excludes the ×3 level-multiplexing of §2.2, so the multiplexed
implementation is compared against 3×32.27; the un-multiplexed variant
against 32.27 directly).  Also fits the scaling exponent of slots vs k,
which Theorem 4.4 predicts to be ≤ 1 asymptotically.
"""

import math

from conftest import replication_seeds

from repro.analysis import print_table, scaling_exponent, summarize
from repro.core import expected_collection_slots, run_collection, theorem_44_constant
from repro.graphs import (
    layered_band,
    path,
    random_geometric,
    reference_bfs_tree,
)
import random


def measure(graph, tree, k, seed, level_classes):
    deepest = max(tree.nodes, key=lambda v: (tree.level[v], v))
    sources = {deepest: [f"m{i}" for i in range(k)]}
    result = run_collection(
        graph, tree, sources, seed, level_classes=level_classes
    )
    return result.slots


def test_e3_collection_constant(benchmark):
    rows = []
    scenarios = [
        ("path-12", lambda r: path(12)),
        ("path-24", lambda r: path(24)),
        ("band-6x4", lambda r: layered_band(6, 4)),
        ("rgg-30", lambda r: random_geometric(30, 0.3, r)),
    ]
    for name, build in scenarios:
        for k in (4, 16):
            for classes in (3, 1):
                samples = []
                for seed in replication_seeds(f"e3-{name}-{k}-{classes}", 5):
                    graph = build(random.Random(seed))
                    tree = reference_bfs_tree(graph, 0)
                    samples.append(
                        measure(graph, tree, k, seed, classes)
                    )
                graph = build(random.Random(0))
                tree = reference_bfs_tree(graph, 0)
                log_delta = math.log2(max(2, graph.max_degree()))
                denom = (k + tree.depth) * log_delta
                constant = summarize(samples).mean / denom
                bound = theorem_44_constant() * classes
                rows.append(
                    [
                        name,
                        k,
                        tree.depth,
                        classes,
                        summarize(samples).mean,
                        constant,
                        bound,
                        "yes" if constant <= bound else "NO",
                    ]
                )
                assert constant <= bound, (name, k, classes, constant)
    print_table(
        [
            "topology",
            "k",
            "D",
            "classes",
            "slots (mean)",
            "slots/((k+D)logΔ)",
            "paper bound",
            "within",
        ],
        rows,
        title="E3: Thm 4.4 — measured collection constant vs 32.27",
    )

    # Scaling in k at fixed topology: exponent ~ <= 1 (linear pipeline).
    graph = path(16)
    tree = reference_bfs_tree(graph, 0)
    ks = [4, 8, 16, 32]
    means = []
    for k in ks:
        samples = [
            measure(graph, tree, k, seed, 3)
            for seed in replication_seeds(f"e3-scaling-{k}", 4)
        ]
        means.append(summarize(samples).mean)
    alpha = scaling_exponent(ks, means)
    print_table(
        ["k", "slots"],
        list(zip(ks, means)),
        title=f"E3b: slots vs k on path-16 (fit exponent α = {alpha:.2f})",
    )
    assert alpha <= 1.2

    benchmark(lambda: measure(graph, tree, 8, seed=5, level_classes=3))
