"""E3 — Theorem 4.4: k-collection completes in ≤ 32.27·(k+D)·log Δ slots.

Sweeps k and D across topology families and reports the measured constant
``slots / ((k + D)·log2 Δ)`` against the paper's 32.27 (the stated bound
excludes the ×3 level-multiplexing of §2.2, so the multiplexed
implementation is compared against 3×32.27; the un-multiplexed variant
against 32.27 directly).  Also fits the scaling exponent of slots vs k,
which Theorem 4.4 predicts to be ≤ 1 asymptotically.

Runs through the parallel runner (experiment ``E3`` of
``repro.runner.defs``): set ``REPRO_BENCH_WORKERS`` to shard the grid and
``REPRO_BENCH_CACHE`` to make repeat runs near-free.  The machine-readable
summary lands in ``benchmarks/results/BENCH_E3.json``.
"""

from conftest import run_experiment_for_bench

from repro.analysis import print_table, scaling_exponent
from repro.core import theorem_44_constant
from repro.runner.defs import (
    E3_CLASSES,
    E3_KS,
    E3_SCALING_KS,
    E3_SCALING_TOPOLOGY,
    E3_TOPOLOGIES,
    collection_metrics,
)


def test_e3_collection_constant(benchmark):
    report = run_experiment_for_bench("E3", replications=5)
    cells = {}
    for outcomes in report.grouped().values():
        params = outcomes[0].spec.params
        key = (params["topology"], params["k"], params["classes"])
        cells[key] = outcomes

    rows = []
    for name in E3_TOPOLOGIES:
        for k in E3_KS:
            for classes in E3_CLASSES:
                outcomes = cells[(name, k, classes)]
                mean_slots = sum(
                    o.metrics["slots"] for o in outcomes
                ) / len(outcomes)
                constant = sum(
                    o.metrics["constant"] for o in outcomes
                ) / len(outcomes)
                depth = outcomes[0].metrics["depth"]
                bound = theorem_44_constant() * classes
                rows.append(
                    [
                        name,
                        k,
                        depth,
                        classes,
                        mean_slots,
                        constant,
                        bound,
                        "yes" if constant <= bound else "NO",
                    ]
                )
                assert constant <= bound, (name, k, classes, constant)
    print_table(
        [
            "topology",
            "k",
            "D",
            "classes",
            "slots (mean)",
            "slots/((k+D)logΔ)",
            "paper bound",
            "within",
        ],
        rows,
        title="E3: Thm 4.4 — measured collection constant vs 32.27",
    )

    # Scaling in k at fixed topology: exponent ~ <= 1 (linear pipeline).
    means = [
        sum(o.metrics["slots"] for o in cells[(E3_SCALING_TOPOLOGY, k, 3)])
        / len(cells[(E3_SCALING_TOPOLOGY, k, 3)])
        for k in E3_SCALING_KS
    ]
    alpha = scaling_exponent(E3_SCALING_KS, means)
    print_table(
        ["k", "slots"],
        list(zip(E3_SCALING_KS, means)),
        title=(
            f"E3b: slots vs k on {E3_SCALING_TOPOLOGY} "
            f"(fit exponent α = {alpha:.2f})"
        ),
    )
    assert alpha <= 1.2

    benchmark(
        lambda: collection_metrics(E3_SCALING_TOPOLOGY, 8, 3, seed=5)
    )
