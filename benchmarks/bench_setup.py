"""E6 — setup-phase cost: expected O((n + D·log n)·log Δ) slots (§2).

Sweeps n across families with very different (D, Δ) profiles and reports
the normalized constant ``slots / ((n + D·log2 n)·log2 Δ)``, which the §2
bound predicts to be flat in n.  Also records leader-election cost for the
substituted epidemic election (DESIGN.md §4) and the retry count of the
Las-Vegas wrapper (expected ≤ 2 attempts).
"""

import math
import random

from conftest import replication_seeds

from repro.analysis import print_table, summarize
from repro.core import elect_leader, run_setup
from repro.graphs import diameter, grid, path, random_geometric


def normalized_setup_cost(graph, seed):
    result = run_setup(graph, root=graph.nodes[0], seed=seed)
    n = graph.num_nodes
    depth = result.tree.depth
    log_n = math.log2(max(2, n))
    log_delta = math.log2(max(2, graph.max_degree()))
    return (
        result.slots / ((n + depth * log_n) * log_delta),
        result.attempts,
        result.slots,
    )


def test_e6_setup_scaling(benchmark):
    rows = []
    scenarios = [
        ("path-16", lambda r: path(16)),
        ("path-32", lambda r: path(32)),
        ("path-64", lambda r: path(64)),
        ("grid-4x4", lambda r: grid(4, 4)),
        ("grid-6x6", lambda r: grid(6, 6)),
        ("rgg-24", lambda r: random_geometric(24, 0.32, r)),
        ("rgg-48", lambda r: random_geometric(48, 0.24, r)),
    ]
    constants = {}
    for name, build in scenarios:
        costs, attempts, slots_list = [], [], []
        for seed in replication_seeds(f"e6-{name}", 4):
            graph = build(random.Random(seed))
            cost, attempt_count, slots = normalized_setup_cost(graph, seed)
            costs.append(cost)
            attempts.append(attempt_count)
            slots_list.append(float(slots))
        graph = build(random.Random(0))
        constants[name] = summarize(costs).mean
        rows.append(
            [
                name,
                graph.num_nodes,
                diameter(graph),
                graph.max_degree(),
                summarize(slots_list).mean,
                constants[name],
                max(attempts),
            ]
        )
        assert max(attempts) <= 3  # Las-Vegas retries are rare
    print_table(
        [
            "topology",
            "n",
            "D",
            "Δ",
            "setup slots",
            "slots/((n+DlogN)logΔ)",
            "max attempts",
        ],
        rows,
        title="E6: setup phase — normalized constant should be flat in n",
    )
    # Within each family, the constant must not grow with n (the bound is
    # tight up to constants): allow 2.5x family drift.
    assert constants["path-64"] <= 2.5 * constants["path-16"]
    assert constants["grid-6x6"] <= 2.5 * constants["grid-4x4"]
    assert constants["rgg-48"] <= 2.5 * constants["rgg-24"]

    # Leader-election substitutes: both variants elect the max ID.
    from repro.core import run_bit_election

    election_rows = []
    for name, build in [("path-16", scenarios[0][1]), ("rgg-24", scenarios[5][1])]:
        graph = build(random.Random(1))
        epidemic = elect_leader(graph, seed=5)
        tournament = run_bit_election(graph, seed=5)
        assert epidemic.leaders == [max(graph.nodes)]
        assert tournament.leaders == [max(graph.nodes)]
        election_rows.append(
            [
                name,
                epidemic.leaders[0],
                epidemic.slots,
                tournament.slots,
            ]
        )
    print_table(
        ["topology", "leader", "epidemic slots", "bit-tournament slots"],
        election_rows,
        title="E6b: leader election substitutes for [4] (both elect max ID)",
    )
    benchmark(lambda: run_setup(grid(3, 3), root=0, seed=7).slots)
