#!/usr/bin/env python3
"""Quickstart: the paper's protocol stack in ~60 lines.

Builds a random unit-disk radio network, constructs the BFS substrate,
and runs each of the paper's services once:

* collection (§4)          — convergecast to the root,
* point-to-point (§5)      — routed unicast via DFS addressing,
* broadcast (§6)           — pipelined distribution to everyone,
* ranking (§7)             — the application.

Usage: python examples/quickstart.py [seed]
"""

import random
import sys

from repro.core import (
    run_broadcast,
    run_collection,
    run_point_to_point,
    run_ranking,
)
from repro.graphs import diameter, random_geometric, reference_bfs_tree


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    rng = random.Random(seed)

    # A 40-station unit-disk network (the classical radio-network model).
    graph = random_geometric(40, radius=0.28, rng=rng)
    print(
        f"network: n={graph.num_nodes}, edges={graph.num_edges}, "
        f"D={diameter(graph)}, Δ={graph.max_degree()}"
    )

    # Setup substrate (centralized bypass; see sensor_field_collection.py
    # for the fully distributed setup phase).
    tree = reference_bfs_tree(graph, root=0)
    tree.assign_dfs_intervals()
    print(f"BFS tree rooted at {tree.root}, depth {tree.depth}")

    # --- collection -----------------------------------------------------
    sources = {node: [f"reading-{node}"] for node in list(graph.nodes)[1:9]}
    collected = run_collection(graph, tree, sources, seed=seed)
    print(
        f"collection: {collected.messages_delivered} messages reached the "
        f"root in {collected.slots} slots"
    )

    # --- point-to-point ---------------------------------------------------
    batch = [(5, 31, "hello"), (31, 5, "hi back"), (17, 2, "ping")]
    p2p = run_point_to_point(graph, tree, batch, seed=seed)
    print(f"point-to-point: {p2p.messages_delivered} delivered in {p2p.slots} slots")
    for dest, messages in sorted(p2p.delivered.items()):
        for message in messages:
            print(f"  {message.origin} -> {dest}: {message.payload!r}")

    # --- broadcast --------------------------------------------------------
    broadcast = run_broadcast(
        graph, tree, {12: ["alert-A"], 25: ["alert-B"]}, seed=seed
    )
    print(
        f"broadcast: {broadcast.messages} messages at every station in "
        f"{broadcast.slots} slots ({broadcast.superphases} superphases, "
        f"{broadcast.resends} NACK resends)"
    )

    # --- ranking ------------------------------------------------------------
    ranking = run_ranking(graph, tree, seed=seed)
    sample = {node: ranking.ranks[node] for node in list(graph.nodes)[:5]}
    print(f"ranking: done in {ranking.slots} slots; e.g. {sample}")


if __name__ == "__main__":
    main()
