#!/usr/bin/env python3
"""Emergency broadcast over a campus grid: pipelining vs repeated floods.

Scenario: a campus is covered by a grid of short-range radio relays.
Several stations raise alerts that must reach *every* relay, in a
consistent order, reliably.  This is exactly the paper's k-broadcast:
alerts are collected to the root and distributed down the BFS tree in
pipelined superphases; sequence numbers + gap-NACKs make delivery exact.

The script also runs the §6 "what if we didn't pipeline" alternative —
one staged flood per alert — to show where the throughput gain comes
from, and demonstrates the NACK recovery path by shrinking superphases
until hops actually fail.

Usage: python examples/emergency_broadcast.py [seed]
"""

import sys

from repro.baselines import staged_flood_slots
from repro.core import run_broadcast
from repro.graphs import grid, reference_bfs_tree


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 3

    campus = grid(6, 6)
    tree = reference_bfs_tree(campus, root=0)
    print(
        f"campus grid: n={campus.num_nodes}, D={tree.depth * 1}, "
        f"Δ={campus.max_degree()}"
    )

    alerts = {
        7: [f"fire drill update {i} from bldg 7" for i in range(5)],
        22: ["road closed at 22", "update: reopened"],
        35: [f"evac status {i} from bldg 35" for i in range(5)],
    }
    k = sum(len(v) for v in alerts.values())

    # --- pipelined k-broadcast ----------------------------------------------
    result = run_broadcast(campus, tree, alerts, seed=seed)
    print(
        f"\npipelined broadcast: {k} alerts everywhere in "
        f"{result.slots} slots ({result.superphases} superphases, "
        f"{result.resends} NACK-driven resends)"
    )
    print(
        f"throughput: {result.slots / k:.0f} slots/alert once the "
        f"pipeline is full"
    )

    # --- the non-pipelined alternative ---------------------------------------
    per_flood = staged_flood_slots(
        tree.depth, campus.num_nodes, campus.max_degree()
    )
    print(
        f"\nnon-pipelined alternative (one staged flood per alert): "
        f"{per_flood} slots × {k} alerts = {per_flood * k} slots "
        f"→ pipelining is {per_flood * k / result.slots:.1f}× faster here"
    )

    # --- reliability under a starved pipeline -------------------------------
    stressed = run_broadcast(
        campus, tree, alerts, seed=seed + 1, invocations=1
    )
    print(
        f"\nstress test (1 Decay try per hop per superphase): delivered "
        f"everywhere = {stressed.delivered_everywhere}, with "
        f"{stressed.resends} NACK-driven resends healing the losses"
    )


if __name__ == "__main__":
    main()
