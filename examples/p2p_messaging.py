#!/usr/bin/env python3
"""Point-to-point messaging over a deep relay chain (§5).

Scenario: stations strung along a pipeline (a road, a river, a border
fence) exchange unicast messages.  The paper's point-to-point service
runs the token-DFS preparation once (§5.1) so every station can route by
DFS address — up to the lowest common ancestor, then down — and then
pipelines any number of concurrent transmissions.

The script runs a mixed workload, shows per-message routes, and compares
against the sequential store-and-forward baseline to exhibit the
pipelining crossover the paper's throughput claim implies.

Usage: python examples/p2p_messaging.py [seed] [n]
"""

import random
import sys

from repro.baselines import run_sequential_p2p
from repro.core import apply_preparation, run_dfs_preparation, run_point_to_point
from repro.graphs import caterpillar, reference_bfs_tree


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    spine = int(sys.argv[2]) if len(sys.argv) > 2 else 40

    # A caterpillar: a deep spine with local clusters hanging off it.
    network = caterpillar(spine, legs=2)
    tree = reference_bfs_tree(network, root=0)
    print(
        f"relay chain: n={network.num_nodes}, depth={tree.depth}, "
        f"Δ={network.max_degree()}"
    )

    # --- §5.1 preparation: the two token-DFS traversals ----------------------
    preparation = run_dfs_preparation(network, tree)
    apply_preparation(tree, preparation)
    print(
        f"preparation: DFS addressing installed in {preparation.slots} "
        f"slots (deterministic, conflict-free token)"
    )

    # --- a mixed messaging workload -----------------------------------------
    rng = random.Random(seed)
    nodes = list(network.nodes)
    workload = []
    for index in range(24):
        u, v = rng.choice(nodes), rng.choice(nodes)
        if u != v:
            workload.append((u, v, f"msg#{index}"))
    result = run_point_to_point(network, tree, workload, seed=seed)
    print(
        f"\npipelined: {result.messages_delivered} messages in "
        f"{result.slots} slots ({result.slots / len(workload):.1f} "
        f"slots/message amortized)"
    )
    for source, dest, payload in workload[:4]:
        route = tree.tree_path(source, dest)
        print(f"  {payload}: {source} -> {dest}, tree route {route}")

    # --- sequential baseline -------------------------------------------------
    sequential = run_sequential_p2p(network, tree, workload)
    print(
        f"\nsequential store-and-forward: {sequential.slots} slots "
        f"({sequential.hop_total} hops, one at a time)"
    )
    ratio = sequential.slots / result.slots
    verdict = "pipelining wins" if ratio > 1 else "sequential wins (k too small)"
    print(f"speedup from pipelining: {ratio:.2f}× — {verdict}")


if __name__ == "__main__":
    main()
