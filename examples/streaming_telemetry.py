#!/usr/bin/env python3
"""Streaming telemetry: the collection pipeline as a live queueing system.

Scenario: monitoring stations stream readings to a sink, indefinitely.
This is §4's queueing model made physical — offered load λ, service by
Decay phases, measurable sojourn times — run through the open-system
service mode (`repro.service`), which never retains per-message records
and so can watch the system for as long as you like in constant memory.
The script:

1. probes the pipeline's saturation capacity µ_eff (messages per phase
   the contended hops can actually serve);
2. streams Bernoulli(λ)-per-phase arrivals at three load levels and
   reports the streaming KPIs — sojourn mean and P² percentiles, queue
   occupancy, throughput, and the backlog-drift stability verdict —
   against the tandem-queue oracle E(T) = D·(1−λ)/(µ_eff−λ);
3. shows the §4.2 "model 1" state vector live, as an ASCII timeline of
   per-level queue occupancy.

Usage: python examples/streaming_telemetry.py [seed]
"""

import sys

from repro.analysis import record_collection_timeline, render_timeline
from repro.core.slots import SlotStructure, decay_budget
from repro.graphs import layered_band, reference_bfs_tree
from repro.rng import derive_seed
from repro.service import compare_with_oracle, measure_capacity, run_service
from repro.workloads import BernoulliArrivals


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 9

    field = layered_band(4, 3)  # contended: every hop hears 3 rivals
    tree = reference_bfs_tree(field, 0)
    sensors = [n for n in tree.nodes if tree.level[n] == tree.depth]
    phase_length = SlotStructure(
        decay_budget(field.max_degree()), 3, True
    ).phase_length
    print(
        f"telemetry field: n={field.num_nodes}, depth={tree.depth}, "
        f"Δ={field.max_degree()}, {len(sensors)} sensors, "
        f"phase = {phase_length} slots"
    )

    # --- probe the capacity --------------------------------------------------
    capacity = measure_capacity(field, tree, sensors, seed, phases=300)
    print(
        f"\nsaturation capacity µ_eff = {capacity:.3f} msgs/phase "
        f"→ critical λ ≈ {capacity / len(sensors):.3f} per sensor"
    )

    # --- sweep the offered load in service mode ------------------------------
    print("\nload sweep (600 phases each, warmup-truncated, open system):")
    print(f"{'λ/sensor':>9} {'sojourn':>8} {'p90':>7} {'queue':>6} "
          f"{'thru/phase':>11} {'oracle E(T)':>12} {'verdict':>9}")
    for rate in (0.05, 0.15, 0.5):
        arrivals = BernoulliArrivals(
            sources=sensors,
            rate=rate,
            phase_length=phase_length,
            seed=derive_seed(seed, "telemetry", int(rate * 100)),
        )
        kpis = run_service(
            field, tree, arrivals, seed=seed,
            horizon_slots=600 * phase_length,
        )
        oracle = compare_with_oracle(kpis, capacity)
        predicted = (
            f"{oracle.predicted_sojourn_phases:>12.1f}"
            if oracle.predicted_sojourn_phases == oracle.predicted_sojourn_phases
            else f"{'unstable λ≥µ':>12}"
        )
        print(
            f"{rate:>9.2f} {kpis.sojourn_phases:>8.1f} "
            f"{kpis.sojourn_quantiles[0.9]:>7.1f} {kpis.queue_mean:>6.2f} "
            f"{kpis.throughput_per_phase:>11.3f} {predicted} "
            f"{'stable' if kpis.stable else 'UNSTABLE':>9}"
        )
    print("→ the queueing knee: below critical λ the drift test reads the")
    print("  backlog as flat and sojourn tracks the tandem oracle; beyond")
    print("  it the backlog grows without bound (§4's stability threshold).")

    # --- watch the pipeline drain one burst ----------------------------------
    print("\na single burst of 6 readings from the deepest sensor, live:")
    timeline = record_collection_timeline(
        field,
        tree,
        {sensors[0]: [f"r{i}" for i in range(6)]},
        seed=seed + 1,
    )
    print(render_timeline(timeline))
    print(
        f"(the §4.2 'model 1' state vector: one row per level, one column "
        f"per Decay phase; drained in {timeline.phases - 1} phases)"
    )


if __name__ == "__main__":
    main()
