#!/usr/bin/env python3
"""Streaming telemetry: the collection pipeline as a live queueing system.

Scenario: monitoring stations stream readings to a sink at a sustained
rate.  This is §4's queueing model made physical — offered load λ,
service by Decay phases, measurable sojourn times.  The script:

1. streams Bernoulli(λ)-per-phase arrivals through the collection
   protocol at three load levels and reports delivery ratio + sojourn;
2. shows the §4.2 "model 1" state vector live, as an ASCII timeline of
   per-level queue occupancy;
3. compares the measured sojourn with the tandem-queue prediction
   E(T) = D·(1−λ)/(µ_eff−λ) using the *measured* effective service rate.

Usage: python examples/streaming_telemetry.py [seed]
"""

import random
import sys

from repro.analysis import record_collection_timeline, render_timeline
from repro.core.slots import SlotStructure, decay_budget
from repro.graphs import layered_band, reference_bfs_tree
from repro.workloads import BernoulliArrivals, run_streaming_collection


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 9

    field = layered_band(4, 3)  # contended: every hop hears 3 rivals
    tree = reference_bfs_tree(field, 0)
    sensors = [n for n in tree.nodes if tree.level[n] == tree.depth]
    phase_length = SlotStructure(
        decay_budget(field.max_degree()), 3, True
    ).phase_length
    print(
        f"telemetry field: n={field.num_nodes}, depth={tree.depth}, "
        f"Δ={field.max_degree()}, {len(sensors)} sensors, "
        f"phase = {phase_length} slots"
    )

    # --- sweep the offered load ----------------------------------------------
    print("\nload sweep (300 phases each):")
    print(f"{'λ/sensor':>9} {'submitted':>10} {'delivered':>10} "
          f"{'sojourn (phases)':>17}")
    for rate in (0.05, 0.2, 0.5):
        arrivals = BernoulliArrivals(
            sources=sensors,
            rate=rate,
            phase_length=phase_length,
            rng=random.Random(seed + int(rate * 100)),
        )
        result = run_streaming_collection(
            field,
            tree,
            arrivals,
            seed=seed,
            horizon_slots=300 * phase_length,
            drain=True,
            drain_budget=5_000 * phase_length,
        )
        print(
            f"{rate:>9.2f} {result.submitted:>10} {result.delivered:>10} "
            f"{result.mean_latency_phases(phase_length):>17.1f}"
        )
    print("→ the queueing knee: sojourn explodes as λ approaches the")
    print("  contended hop's effective service rate (§4's stability bound).")

    # --- watch the pipeline drain one burst ----------------------------------
    print("\na single burst of 6 readings from the deepest sensor, live:")
    timeline = record_collection_timeline(
        field,
        tree,
        {sensors[0]: [f"r{i}" for i in range(6)]},
        seed=seed + 1,
    )
    print(render_timeline(timeline))
    print(
        f"(the §4.2 'model 1' state vector: one row per level, one column "
        f"per Decay phase; drained in {timeline.phases - 1} phases)"
    )


if __name__ == "__main__":
    main()
