#!/usr/bin/env python3
"""The §4 analysis, hands on: Bernoulli servers and the model chain.

Reproduces the paper's analytical pipeline interactively:

1. one Geo/Geo/1 Bernoulli server — simulated stationary distribution vs
   the closed forms (p_j, N̄, Little's E(T), Hsu–Burke departures);
2. the tandem of D servers — Theorem 4.3's completion-time formula vs
   simulation;
3. the model chain — the radio protocol (model 1) bounded by models
   2 ≤ 3 ≤ 4, with the Theorem 4.4 constant emerging at the end.

Usage: python examples/queueing_playground.py [seed]
"""

import random
import sys

from repro.analysis import print_table
from repro.core import MU, LAMBDA_STAR, run_collection, theorem_44_constant
from repro.graphs import path, reference_bfs_tree
from repro.queueing import (
    expected_queue_length,
    expected_sojourn_time,
    model4_prediction,
    observe_single_server,
    radio_completion_phases,
    simulate_model2,
    simulate_model3,
    simulate_model4,
    stationary_distribution,
)


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    rng = random.Random(seed)

    # --- 1. a single Bernoulli server ---------------------------------------
    lam, mu = 0.12, MU  # the paper's µ, loaded at λ* < µ
    obs = observe_single_server(lam, mu, steps=80_000, rng=rng)
    rows = [
        ["queue length N̄", obs.mean_queue_length, expected_queue_length(lam, mu)],
        ["sojourn E(T)", obs.mean_sojourn_time, expected_sojourn_time(lam, mu)],
        ["departure rate", obs.departure_rate, lam],
    ]
    print_table(
        ["quantity", "simulated", "closed form"],
        rows,
        title=f"one Bernoulli server, λ={lam}, µ={mu:.4f}",
    )
    dist_rows = [
        [j, obs.empirical_p(j), p]
        for j, p in enumerate(stationary_distribution(lam, mu, 5))
    ]
    print_table(["j", "p_j simulated", "p_j closed form"], dist_rows)

    # --- 2. the tandem and Theorem 4.3 ---------------------------------------
    k, depth = 8, 6
    reps = 300
    mean4 = sum(
        simulate_model4(k, depth, mu, LAMBDA_STAR, random.Random(seed + i)).steps
        for i in range(reps)
    ) / reps
    predicted = model4_prediction(k, depth, mu=mu, lam=LAMBDA_STAR)
    print(
        f"\nTheorem 4.3 (k={k}, D={depth}): predicted "
        f"{predicted:.1f} phases, simulated {mean4:.1f} phases"
    )

    # --- 3. the model chain ---------------------------------------------------
    graph = path(depth + 1)
    tree = reference_bfs_tree(graph, 0)
    radio_reps = 30
    phases1 = 0.0
    for i in range(radio_reps):
        result = run_collection(
            graph, tree, {depth: [f"m{j}" for j in range(k)]}, seed=seed + i
        )
        phases1 += radio_completion_phases(
            result.slots, result.slot_structure.phase_length
        )
    phases1 /= radio_reps
    mean2 = sum(
        simulate_model2(
            (0,) * (depth - 1) + (k,), mu, random.Random(seed + i)
        ).steps
        for i in range(reps)
    ) / reps
    mean3 = sum(
        simulate_model3(k, depth, mu, LAMBDA_STAR, random.Random(seed + i)).steps
        for i in range(reps)
    ) / reps
    print_table(
        ["model", "expected completion (phases)"],
        [
            ["1: radio network (measured)", phases1],
            ["2: messages pre-placed", mean2],
            ["3: Bernoulli arrivals", mean3],
            ["4: steady-state start", mean4],
            ["Theorem 4.3 closed form", predicted],
        ],
        title="the §4.2 reduction chain (each row upper-bounds the one above)",
    )
    print(
        f"\n…and at λ* = 1−√(1−µ) = {LAMBDA_STAR:.4f} the bound becomes "
        f"(k+D)/λ* phases × 4·logΔ slots/phase = "
        f"{theorem_44_constant():.2f}·(k+D)·logΔ slots — Theorem 4.4."
    )


if __name__ == "__main__":
    main()
