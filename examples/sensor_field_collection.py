#!/usr/bin/env python3
"""Sensor-field convergecast: the fully distributed pipeline, end to end.

Scenario: battery-powered sensors are scattered over a field; one of them
must become the sink and gather everyone's periodic readings over radio.
Nothing is configured centrally — the stations run the *paper's own setup
phase* to organize themselves:

1. epidemic leader election (the sink emerges),
2. distributed BFS-tree construction with Las-Vegas confirmation (§2),
3. steady-state collection (§4), with readings submitted over time
   (the protocol is reactive) rather than as one batch.

The script then checks the measured steady-state throughput against
Theorem 4.4's "a new transmission every O(log Δ) time slots".

Usage: python examples/sensor_field_collection.py [seed] [n]
"""

import math
import random
import sys

from repro.core import (
    elect_leader,
    expected_collection_slots,
    run_setup,
)
from repro.core.collection import build_collection_network
from repro.graphs import diameter, random_geometric


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 36

    rng = random.Random(seed)
    field = random_geometric(n, radius=max(0.22, 1.9 / math.sqrt(n)), rng=rng)
    print(
        f"sensor field: n={n}, D={diameter(field)}, Δ={field.max_degree()}"
    )

    # --- distributed setup -------------------------------------------------
    election = elect_leader(field, seed=seed)
    sink = election.leaders[0]
    print(f"leader election: station {sink} became the sink "
          f"({election.slots} slots)")

    setup = run_setup(field, root=sink, seed=seed + 1)
    tree = setup.tree
    print(
        f"BFS setup: depth {tree.depth}, {setup.slots} slots, "
        f"{setup.attempts} attempt(s), true BFS levels: {setup.is_true_bfs}"
    )

    # --- reactive periodic readings -----------------------------------------
    network, processes, slots = build_collection_network(
        field, tree, sources={}, seed=seed + 2
    )
    sink_process = processes[sink]
    sensors = [node for node in field.nodes if node != sink]
    rounds = 4
    submitted = 0
    report_interval = 2 * slots.phase_length
    for round_index in range(rounds):
        for sensor in sensors:
            processes[sensor].submit((round_index, sensor, "temp=ok"))
            submitted += 1
        # Let the pipeline drain a little between sampling rounds.
        network.run(
            500_000,
            until=lambda net: len(sink_process.delivered)
            >= submitted - len(sensors) // 2,
            check_every=report_interval,
        )
        print(
            f"round {round_index}: sink holds "
            f"{len(sink_process.delivered)}/{submitted} readings "
            f"at slot {network.slot}"
        )
    network.run(
        1_000_000,
        until=lambda net: len(sink_process.delivered) >= submitted,
        check_every=4,
    )
    steady_slots = network.slot

    # --- throughput vs Theorem 4.4 -----------------------------------------
    log_delta = math.log2(max(2, field.max_degree()))
    per_message = steady_slots / submitted
    bound = expected_collection_slots(
        submitted, tree.depth, field.max_degree(), level_classes=3
    )
    print(
        f"\nsteady state: {submitted} readings in {steady_slots} slots "
        f"= {per_message:.1f} slots/reading "
        f"(log2 Δ = {log_delta:.2f}, so {per_message / log_delta:.1f}·logΔ "
        f"per reading)"
    )
    print(
        f"Theorem 4.4 envelope for this workload: {bound:,.0f} slots "
        f"({'within' if steady_slots <= bound else 'OVER'})"
    )


if __name__ == "__main__":
    main()
