"""Tests for the parallel experiment runner (repro.runner).

The load-bearing property is *determinism under sharding*: the same
grid run inline, over 2 workers, over 4 workers, or replayed from a
warm cache must produce bit-identical summaries.  Everything else —
content addressing, atomic cache writes, telemetry records, the CLI —
supports that contract.
"""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.analysis.sweep import TopologyPoint, replicated, sweep
from repro.errors import ConfigurationError
from repro.graphs import path, star
from repro.radio.network import RadioNetwork
from repro.runner import (
    ResultCache,
    RunTelemetry,
    TaskExecutionError,
    TaskSpec,
    bench_summary,
    get_experiment,
    median,
    read_telemetry,
    registered_ids,
    run_experiment,
    run_tasks,
    task_grid,
    write_bench_summary,
)
from repro.runner.defs import build_topology


# ----------------------------------------------------------------------
# Top-level helpers (must be picklable for worker processes)
# ----------------------------------------------------------------------

def seed_digit_metric(spec: TaskSpec):
    return {"value": spec.seed % 97}


def failing_metric(spec: TaskSpec):
    raise ValueError("boom")


def measure_nodes_plus_seed(graph, seed: int) -> float:
    return graph.num_nodes + (seed % 5)


def measure_seed_mod(seed: int) -> float:
    return float(seed % 13)


def build_path6(rng: random.Random):
    return path(6)


def build_star5(rng: random.Random):
    return star(5)


PICKLABLE_POINTS = [
    TopologyPoint("path-6", build_path6),
    TopologyPoint("star-5", build_star5),
]


# ----------------------------------------------------------------------
# Task model
# ----------------------------------------------------------------------

class TestTaskModel:
    def test_grid_shape_and_seed_determinism(self):
        cases = [{"k": 4}, {"k": 8}]
        a = task_grid("EX", cases, replications=3, seed=7)
        b = task_grid("EX", cases, replications=3, seed=7)
        assert len(a) == 6
        assert a == b
        # Seeds depend only on task identity, never on grid position:
        # the same case in a differently-ordered grid gets the same seed.
        flipped = task_grid("EX", list(reversed(cases)), 3, seed=7)
        by_label = {t.label(): t.seed for t in flipped}
        for task in a:
            assert by_label[task.label()] == task.seed

    def test_seeds_distinct_across_cases_and_replicates(self):
        tasks = task_grid("EX", [{"k": 1}, {"k": 2}], 4, seed=1)
        assert len({t.seed for t in tasks}) == len(tasks)

    def test_key_covers_version(self):
        spec = task_grid("EX", [{"k": 1}], 1, seed=1)[0]
        assert spec.key("1.0.0") != spec.key("1.0.1")
        assert spec.key("1.0.0") == spec.key("1.0.0")

    def test_record_round_trip(self):
        spec = task_grid("EX", [{"b": 2, "a": "x"}], 2, seed=9)[1]
        assert TaskSpec.from_record(spec.to_record()) == spec

    def test_rejects_non_scalar_case(self):
        with pytest.raises(ConfigurationError):
            task_grid("EX", [{"k": [1, 2]}], 1, seed=0)

    def test_rejects_empty_grid(self):
        with pytest.raises(ConfigurationError):
            task_grid("EX", [], 1, seed=0)
        with pytest.raises(ConfigurationError):
            task_grid("EX", [{"k": 1}], 0, seed=0)


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------

class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        cache.put(key, {"metrics": {"v": 1.5}})
        assert key in cache
        assert cache.get(key)["metrics"]["v"] == 1.5
        assert list(cache.keys()) == [key]

    def test_corrupt_entry_is_a_miss_and_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "1" * 62
        cache.put(key, {"metrics": {}})
        cache._path(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        assert key not in cache

    def test_hit_miss_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ee" + "2" * 62
        cache.get(key)
        cache.put(key, {"metrics": {}})
        cache.get(key)
        assert (cache.hits, cache.misses) == (1, 1)


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------

class TestExecutor:
    def test_inline_outcomes_in_grid_order(self):
        tasks = task_grid("EX", [{"k": 1}, {"k": 2}], 3, seed=3)
        report = run_tasks(tasks, seed_digit_metric)
        assert [o.spec for o in report.outcomes] == tasks
        assert report.executed == len(tasks)
        assert report.cache_hits == 0

    def test_workers_match_inline_bit_for_bit(self):
        tasks = task_grid("EX", [{"k": 1}, {"k": 2}, {"k": 3}], 4, seed=5)
        inline = run_tasks(tasks, seed_digit_metric, workers=0)
        sharded = run_tasks(tasks, seed_digit_metric, workers=3)
        assert inline.summary_table() == sharded.summary_table()
        assert [o.metrics for o in inline.outcomes] == [
            o.metrics for o in sharded.outcomes
        ]

    def test_cache_replays_without_executing(self, tmp_path):
        tasks = task_grid("EX", [{"k": 1}], 5, seed=2)
        first = run_tasks(tasks, seed_digit_metric, cache=tmp_path)
        again = run_tasks(tasks, seed_digit_metric, cache=tmp_path)
        assert first.executed == 5
        assert again.executed == 0
        assert again.cache_hits == 5
        assert again.summary_table() == first.summary_table()

    def test_partial_cache_resumes(self, tmp_path):
        tasks = task_grid("EX", [{"k": 1}], 4, seed=2)
        run_tasks(tasks[:2], seed_digit_metric, cache=tmp_path)
        report = run_tasks(tasks, seed_digit_metric, cache=tmp_path)
        assert report.cache_hits == 2
        assert report.executed == 2

    def test_version_change_invalidates_cache(self, tmp_path):
        tasks = task_grid("EX", [{"k": 1}], 2, seed=2)
        run_tasks(tasks, seed_digit_metric, cache=tmp_path, version="a")
        rerun = run_tasks(
            tasks, seed_digit_metric, cache=tmp_path, version="b"
        )
        assert rerun.executed == 2

    def test_task_error_carries_label(self):
        tasks = task_grid("EX", [{"k": 1}], 1, seed=1)
        with pytest.raises(TaskExecutionError, match=r"EX\[k=1\]#0"):
            run_tasks(tasks, failing_metric)

    def test_rejects_negative_workers(self):
        with pytest.raises(ConfigurationError):
            run_tasks([], seed_digit_metric, workers=-1)

    def test_case_means_and_metric(self):
        tasks = task_grid("EX", [{"k": 1}, {"k": 2}], 2, seed=3)
        report = run_tasks(tasks, seed_digit_metric)
        means = report.case_means("value")
        assert set(means) == {"k=1", "k=2"}
        assert len(report.metric("value")) == 4
        assert len(report.metric("value", case_label="k=1")) == 2


# ----------------------------------------------------------------------
# Registered experiments: determinism under sharding (the acceptance bar)
# ----------------------------------------------------------------------

class TestRegisteredExperiments:
    def test_registry_lists_builtins(self):
        assert {"E2", "E3", "E16"} <= set(registered_ids())
        assert get_experiment("E3").summary_metrics == ("slots", "constant")
        with pytest.raises(ConfigurationError):
            get_experiment("E99")

    def test_sharded_summaries_bit_identical_and_cache_hits(self, tmp_path):
        """workers=0, 2 and 4 agree bit for bit; a warm re-run executes 0."""
        summaries = {}
        for workers in (0, 2, 4):
            report = run_experiment(
                "E3",
                seed=11,
                replications=2,
                workers=workers,
                quick=True,
            )
            summaries[workers] = report.summary_table()
            assert report.executed == len(report.outcomes)
        assert summaries[0] == summaries[2] == summaries[4]

        warm = run_experiment(
            "E3", seed=11, replications=2, workers=2, quick=True,
            cache=tmp_path,
        )
        replay = run_experiment(
            "E3", seed=11, replications=2, workers=4, quick=True,
            cache=tmp_path,
        )
        assert replay.executed == 0
        assert replay.cache_hits == len(warm.outcomes)
        assert replay.summary_table() == summaries[0]

    def test_e16_quick_grid_runs_inline(self):
        report = run_experiment(
            "E16", seed=3, replications=1, workers=0, quick=True
        )
        scenarios = {o.spec.params["scenario"] for o in report.outcomes}
        assert scenarios == {"fading", "partition"}
        for outcome in report.outcomes:
            assert outcome.metrics["reachable_delivery_ratio"] == 1.0

    def test_build_topology_families(self):
        rng = random.Random(0)
        assert build_topology("path-5", rng).num_nodes == 5
        assert build_topology("grid-3x4", rng).num_nodes == 12
        assert build_topology("band-4x3", rng).num_nodes == 4 * 3
        assert build_topology("tree-b2-d3", rng).num_nodes == 15
        assert build_topology("rtree-9", rng).num_nodes == 9
        assert build_topology("rgg-12", rng).num_nodes == 12
        with pytest.raises(ConfigurationError):
            build_topology("moebius-7", rng)
        with pytest.raises(ConfigurationError):
            build_topology("grid-x", rng)


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------

class TestTelemetry:
    def test_jsonl_and_manifest(self, tmp_path):
        run_dir = tmp_path / "run"
        tasks = task_grid("EX", [{"k": 1}], 3, seed=4)
        run_tasks(
            tasks,
            seed_digit_metric,
            telemetry=RunTelemetry(run_dir),
            cache=tmp_path / "cache",
        )
        records = read_telemetry(run_dir)
        assert len(records) == 3
        assert [r["sequence"] for r in records] == [0, 1, 2]
        assert all(r["cached"] is False for r in records)
        manifest = json.loads(
            (run_dir / "manifest.json").read_text(encoding="utf-8")
        )
        assert manifest["status"] == "finished"
        assert manifest["total_tasks"] == 3
        assert manifest["executed"] == 3
        assert manifest["cache_hits"] == 0

        # The replay run records every task as a cache hit.
        run_tasks(
            tasks,
            seed_digit_metric,
            telemetry=RunTelemetry(run_dir),
            cache=tmp_path / "cache",
        )
        records = read_telemetry(run_dir)
        assert all(r["cached"] is True for r in records)

    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 3.0, 2.0]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_bench_summary_payload(self, tmp_path):
        tasks = task_grid("EX", [{"k": 1}, {"k": 2}], 3, seed=4)
        report = run_tasks(tasks, seed_digit_metric)
        out = tmp_path / "BENCH_EX.json"
        payload = write_bench_summary(report, out)
        assert json.loads(out.read_text(encoding="utf-8")) == payload
        assert payload["exp_id"] == "EX"
        assert payload["tasks"] == 6
        assert len(payload["cases"]) == 2
        for case in payload["cases"]:
            stats = case["metrics"]["value"]
            assert stats["n"] == 3
            assert stats["ci95_low"] <= stats["median"] <= stats["ci95_high"]
        assert bench_summary(report)["cases"] == payload["cases"]


# ----------------------------------------------------------------------
# sweep()/replicated() through the runner
# ----------------------------------------------------------------------

class TestSweepMigration:
    def test_sweep_workers_match_inline(self):
        inline = sweep(
            PICKLABLE_POINTS, measure_nodes_plus_seed, 4, seed=6
        )
        sharded = sweep(
            PICKLABLE_POINTS, measure_nodes_plus_seed, 4, seed=6,
            workers=2,
        )
        assert {
            name: m.samples for name, m in inline.items()
        } == {name: m.samples for name, m in sharded.items()}

    def test_sweep_cache_replays(self, tmp_path):
        kwargs = dict(replications=3, seed=6, cache_dir=tmp_path)
        first = sweep(
            PICKLABLE_POINTS, measure_nodes_plus_seed, **kwargs
        )
        again = sweep(
            PICKLABLE_POINTS, measure_nodes_plus_seed, **kwargs
        )
        assert {n: m.samples for n, m in first.items()} == {
            n: m.samples for n, m in again.items()
        }
        # A warm cache means zero fresh computation: every stored key
        # predates the second sweep.
        assert ResultCache(tmp_path).hits == 0  # fresh view, just counts
        assert len(ResultCache(tmp_path)) == 6

    def test_replicated_workers_and_cache(self, tmp_path):
        inline = replicated(measure_seed_mod, 5, seed=8)
        sharded = replicated(
            measure_seed_mod, 5, seed=8, workers=2, cache_dir=tmp_path
        )
        replay = replicated(
            measure_seed_mod, 5, seed=8, workers=0, cache_dir=tmp_path
        )
        assert inline.samples == sharded.samples == replay.samples


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestRunCli:
    def test_run_list(self, capsys):
        from repro.__main__ import main

        assert main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        assert "E3" in out and "E16" in out

    def test_run_quick_with_cache_and_telemetry(self, tmp_path, capsys):
        from repro.__main__ import main

        argv = [
            "run", "E3", "--quick", "--replications", "2",
            "--workers", "2", "--seed", "11",
            "--cache", str(tmp_path / "cache"),
            "--run-dir", str(tmp_path / "run"),
            "--json", str(tmp_path / "BENCH_E3.json"),
            "--no-progress",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "4 executed, 0 from cache" in first
        assert (tmp_path / "run" / "telemetry.jsonl").exists()
        assert (tmp_path / "BENCH_E3.json").exists()

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 executed, 4 from cache" in second

    def test_run_without_exp_id_errors(self, capsys):
        from repro.__main__ import main

        assert main(["run"]) == 2


# ----------------------------------------------------------------------
# Engine satellite: attachment validated once, not per slot
# ----------------------------------------------------------------------

class TestAttachmentValidation:
    def test_missing_station_detected(self):
        from repro.radio.process import Process

        class Idle(Process):
            def on_slot(self, slot):
                return None

        network = RadioNetwork(path(4))
        network.attach(Idle(0))
        with pytest.raises(ConfigurationError, match="without processes"):
            network.step()
        # Completing the attachment clears the failure.
        for node in (1, 2, 3):
            network.attach(Idle(node))
        network.step()
        assert network.slot == 1

    def test_validation_is_cached_across_steps(self):
        from repro.radio.process import Process

        class Idle(Process):
            def on_slot(self, slot):
                return None

        network = RadioNetwork(path(3))
        for node in range(3):
            network.attach(Idle(node))
        network.step()
        assert network._attachment_validated
        # Attaching again (e.g. a repair swapping in a new process)
        # re-arms the check.
        network.attach(Idle(1))
        assert not network._attachment_validated
        network.step()
        assert network._attachment_validated


# ----------------------------------------------------------------------

class TestEngineSelection:
    """engine='vector' tasks: cache separation and batched execution."""

    def test_same_spec_different_engine_different_key(self):
        # Regression for the acceptance criterion: vector outcomes are
        # distributionally (not bitwise) equivalent to scalar ones, so
        # they must never alias in the result cache.
        import dataclasses

        scalar = TaskSpec("E3", (("k", 4),), 0, 123)
        vector = dataclasses.replace(scalar, engine="vector")
        assert scalar.engine == "scalar"
        assert scalar.key("1.1.0") != vector.key("1.1.0")

    def test_engine_round_trips_through_records(self):
        import dataclasses

        spec = dataclasses.replace(
            TaskSpec("E2", (("load", 2),), 1, 77), engine="vector"
        )
        assert TaskSpec.from_record(spec.to_record()) == spec
        # Pre-engine cache records (no "engine" field) read as scalar.
        legacy = spec.to_record()
        del legacy["engine"]
        assert TaskSpec.from_record(legacy).engine == "scalar"

    def test_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError):
            TaskSpec("E3", (), 0, 1, engine="quantum")
        with pytest.raises(ConfigurationError):
            run_experiment(
                "E3", seed=1, replications=1, quick=True, engine="quantum"
            )

    def test_vector_run_matches_scalar_on_deterministic_cells(self):
        # The quick E3 grid uses deterministic topologies whose
        # single-source pipelines drain in a seed-independent number of
        # slots: both engines must agree exactly, case by case.
        scalar = run_experiment("E3", seed=7, replications=3, quick=True)
        vector = run_experiment(
            "E3", seed=7, replications=3, quick=True, engine="vector"
        )
        assert scalar.case_means("slots") == vector.case_means("slots")
        assert all(o.spec.engine == "vector" for o in vector.outcomes)

    def test_cache_keeps_engines_apart_and_replays_each(self, tmp_path):
        cache = tmp_path / "cache"
        first = run_experiment(
            "E3", seed=7, replications=2, quick=True, cache=cache
        )
        assert first.cache_hits == 0
        crossed = run_experiment(
            "E3", seed=7, replications=2, quick=True, cache=cache,
            engine="vector",
        )
        assert crossed.cache_hits == 0  # scalar results must not replay
        replay = run_experiment(
            "E3", seed=7, replications=2, quick=True, cache=cache,
            engine="vector",
        )
        assert replay.cache_hits == len(replay.outcomes)
        scalar_again = run_experiment(
            "E3", seed=7, replications=2, quick=True, cache=cache
        )
        assert scalar_again.cache_hits == len(scalar_again.outcomes)

    def test_vector_workers_match_inline(self):
        inline = run_experiment(
            "E2", seed=5, replications=3, quick=True, engine="vector"
        )
        sharded = run_experiment(
            "E2", seed=5, replications=3, quick=True, engine="vector",
            workers=2,
        )
        assert inline.summary_table() == sharded.summary_table()

    def test_vector_engine_requires_batch_support(self):
        # E16 (fault scenarios) has no lockstep implementation: the
        # failure models are scalar-only by design.
        with pytest.raises(ConfigurationError):
            run_experiment(
                "E16", seed=1, replications=1, quick=True, engine="vector"
            )

    def test_run_tasks_rejects_vector_without_batch_fn(self):
        import dataclasses

        tasks = [
            dataclasses.replace(spec, engine="vector")
            for spec in task_grid("EX", [{"a": 1}], 2, seed=3)
        ]
        with pytest.raises(ConfigurationError):
            run_tasks(tasks, seed_digit_metric)


class TestEngineCli:
    def test_run_engine_vector(self, capsys):
        from repro.__main__ import main

        argv = [
            "run", "E3", "--quick", "--engine", "vector",
            "--replications", "2", "--no-progress",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "engine=vector" in out

    def test_run_unknown_experiment_is_friendly(self, capsys):
        from repro.__main__ import main

        assert main(["run", "E99", "--no-progress"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "E3" in err  # lists what IS runnable
        assert "--list" in err

    def test_vector_check_command(self, capsys):
        from repro.__main__ import main

        assert main(["vector-check", "20260704"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out


class TestReceptionSelection:
    """reception='dense|sparse|auto' is part of cached task identity."""

    def test_reception_is_part_of_the_cache_key(self):
        import dataclasses

        auto = dataclasses.replace(
            TaskSpec("E3", (("k", 4),), 0, 123), engine="vector"
        )
        sparse = dataclasses.replace(auto, reception="sparse")
        dense = dataclasses.replace(auto, reception="dense")
        keys = {auto.key("1.2.0"), sparse.key("1.2.0"), dense.key("1.2.0")}
        assert len(keys) == 3

    def test_reception_round_trips_through_records(self):
        import dataclasses

        spec = dataclasses.replace(
            TaskSpec("E2", (("load", 2),), 1, 77),
            engine="vector",
            reception="sparse",
        )
        assert TaskSpec.from_record(spec.to_record()) == spec
        # Pre-reception cache records read back as the auto default.
        legacy = spec.to_record()
        del legacy["reception"]
        assert TaskSpec.from_record(legacy).reception == "auto"

    def test_rejects_unknown_reception(self):
        with pytest.raises(ConfigurationError):
            TaskSpec("E3", (), 0, 1, reception="csr")
        with pytest.raises(ConfigurationError):
            run_experiment(
                "E3", seed=1, replications=1, quick=True,
                engine="vector", reception="csr",
            )

    def test_vector_kernels_agree_end_to_end(self):
        # Dense and sparse kernels are bit-identical, so whole
        # experiment runs (not just single resolves) must agree.
        runs = {
            mode: run_experiment(
                "E3", seed=5, replications=2, quick=True,
                engine="vector", reception=mode,
            )
            for mode in ("dense", "sparse")
        }
        assert (
            runs["dense"].case_means("slots")
            == runs["sparse"].case_means("slots")
        )
        assert all(
            o.spec.reception == "sparse" for o in runs["sparse"].outcomes
        )

    def test_run_cli_reception_flag(self, capsys):
        from repro.__main__ import main

        argv = [
            "run", "E3", "--quick", "--engine", "vector",
            "--reception", "sparse", "--replications", "2",
            "--no-progress",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "reception=sparse" in out


class TestBackendAndMaskSelection:
    """--backend/--mask join cached task identity like reception."""

    def test_backend_and_mask_join_the_cache_key(self):
        import dataclasses

        base = dataclasses.replace(
            TaskSpec("E3", (("k", 4),), 0, 123), engine="vector"
        )
        variants = {
            base.key("1.7.0"),
            dataclasses.replace(base, backend="numpy").key("1.7.0"),
            dataclasses.replace(base, backend="numba").key("1.7.0"),
            dataclasses.replace(base, mask="on").key("1.7.0"),
            dataclasses.replace(base, mask="off").key("1.7.0"),
        }
        assert len(variants) == 5

    def test_round_trips_and_legacy_defaults(self):
        import dataclasses

        spec = dataclasses.replace(
            TaskSpec("E2", (("load", 2),), 1, 77),
            engine="vector", backend="numpy", mask="on",
        )
        assert TaskSpec.from_record(spec.to_record()) == spec
        legacy = spec.to_record()
        del legacy["backend"]
        del legacy["mask"]
        restored = TaskSpec.from_record(legacy)
        assert restored.backend == "auto"
        assert restored.mask == "auto"

    def test_rejects_unknown_backend_and_mask(self):
        with pytest.raises(ConfigurationError):
            TaskSpec("E3", (), 0, 1, backend="fortran")
        with pytest.raises(ConfigurationError):
            TaskSpec("E3", (), 0, 1, mask="maybe")
        with pytest.raises(ConfigurationError):
            run_experiment(
                "E3", seed=1, replications=1, quick=True,
                engine="vector", backend="fortran",
            )
        with pytest.raises(ConfigurationError):
            run_experiment(
                "E3", seed=1, replications=1, quick=True,
                engine="vector", mask="maybe",
            )

    def test_masked_run_matches_unmasked_on_deterministic_cells(self):
        # Quick E3 cells drain in a coin-independent number of slots,
        # so even the masked loop's different coin accounting cannot
        # move the answer.
        runs = {
            mode: run_experiment(
                "E3", seed=5, replications=2, quick=True,
                engine="vector", mask=mode,
            )
            for mode in ("off", "on")
        }
        assert runs["off"].case_means("slots") == runs["on"].case_means("slots")
        assert all(o.spec.mask == "on" for o in runs["on"].outcomes)

    def test_run_cli_backend_and_mask_flags(self, capsys):
        from repro.__main__ import main

        argv = [
            "run", "E3", "--quick", "--engine", "vector",
            "--backend", "numpy", "--mask", "on",
            "--replications", "2", "--no-progress",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "backend=numpy" in out
        assert "mask=on" in out


class TestBatchSharding:
    """Vector cell groups split into per-worker sub-batches."""

    def test_shards_are_contiguous_and_cover_everything(self):
        from repro.runner.executor import _shard_batch_groups

        groups = [[0, 1, 2, 3, 4, 5, 6, 7], [8, 9, 10]]
        sharded = _shard_batch_groups(groups, workers=2)
        assert [i for shard in sharded for i in shard] == list(range(11))
        assert len(sharded) >= len(groups)
        # No shard ever mixes two cells' tasks.
        for shard in sharded:
            assert any(
                set(shard) <= set(group) for group in groups
            ), shard

    def test_workers_zero_is_a_passthrough(self):
        from repro.runner.executor import _shard_batch_groups

        groups = [[3, 1, 2], [9]]
        assert _shard_batch_groups(groups, workers=0) == groups
        assert _shard_batch_groups([], workers=4) == []

    def test_small_groups_never_produce_empty_shards(self):
        from repro.runner.executor import _shard_batch_groups

        sharded = _shard_batch_groups([[0], [1], [2]], workers=8)
        assert sharded == [[0], [1], [2]]

    def test_sharded_masked_vector_run_bit_identical(self):
        # The load-bearing guarantee behind sub-batch splitting: coin
        # streams are per-replication, so any partition of a cell's
        # seeds replays the identical trajectory.
        inline = run_experiment(
            "E3", seed=9, replications=4, quick=True,
            engine="vector", mask="on",
        )
        sharded = run_experiment(
            "E3", seed=9, replications=4, quick=True,
            engine="vector", mask="on", workers=2,
        )
        assert inline.summary_table() == sharded.summary_table()
