"""Smoke tests: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "5")
        assert "collection:" in out
        assert "broadcast:" in out
        assert "ranking:" in out

    def test_sensor_field_collection(self):
        out = run_example("sensor_field_collection.py", "2", "20")
        assert "leader election" in out
        assert "within" in out  # Theorem 4.4 envelope respected

    def test_emergency_broadcast(self):
        out = run_example("emergency_broadcast.py", "4")
        assert "pipelined broadcast" in out
        assert "delivered everywhere = True" in out

    def test_p2p_messaging(self):
        out = run_example("p2p_messaging.py", "6", "24")
        assert "pipelined:" in out
        assert "sequential store-and-forward" in out

    def test_queueing_playground(self):
        out = run_example("queueing_playground.py", "3")
        assert "Theorem 4.3" in out
        assert "32.27" in out

    def test_examples_accept_default_args(self):
        # The cheapest script with no args, as documented.
        out = run_example("quickstart.py")
        assert "network:" in out

    def test_streaming_telemetry(self):
        out = run_example("streaming_telemetry.py", "2")
        assert "saturation capacity" in out
        assert "load sweep" in out
        assert "level occupancy" in out
        # The open-system sweep crosses the knee: the low rate is read
        # as stable by the drift test, the top rate as unstable.
        assert "stable" in out
        assert "UNSTABLE" in out
