"""Tests for the queueing analytics and the model 2/3/4 simulators (§4.3)."""

import math
import random

import pytest

from repro.analysis import geometric_pmf, summarize, total_variation_distance
from repro.errors import ConfigurationError
from repro.queueing import (
    expected_queue_length,
    expected_sojourn_time,
    geometric_ratio,
    interdeparture_histogram,
    mean_completion,
    model4_prediction,
    observe_single_server,
    optimal_lambda,
    radio_completion_phases,
    sample_stationary_queue_length,
    simulate_model2,
    simulate_model3,
    simulate_model4,
    stationary_distribution,
    stationary_probability,
    tandem_completion_time,
    utilization,
)
from repro.core import LAMBDA_STAR, MU


class TestClosedForms:
    def test_p0(self):
        assert stationary_probability(0, lam=0.1, mu=0.4) == pytest.approx(
            1 - 0.1 / 0.4
        )

    def test_distribution_sums_to_one(self):
        dist = stationary_distribution(0.15, 0.4, j_max=200)
        assert sum(dist) == pytest.approx(1.0, abs=1e-9)

    def test_expected_queue_length_consistent_with_distribution(self):
        lam, mu = 0.2, 0.5
        dist = stationary_distribution(lam, mu, j_max=400)
        mean_from_dist = sum(j * p for j, p in enumerate(dist))
        assert mean_from_dist == pytest.approx(
            expected_queue_length(lam, mu), abs=1e-9
        )

    def test_littles_law(self):
        lam, mu = 0.12, 0.3
        assert expected_sojourn_time(lam, mu) == pytest.approx(
            expected_queue_length(lam, mu) / lam
        )

    def test_sojourn_formula(self):
        assert expected_sojourn_time(0.1, 0.3) == pytest.approx(
            (1 - 0.1) / (0.3 - 0.1)
        )

    def test_theorem_43(self):
        lam, mu = 0.1, 0.25
        assert tandem_completion_time(5, 3, lam, mu) == pytest.approx(
            5 / lam + 3 * (1 - lam) / (mu - lam)
        )

    def test_optimal_lambda_balances_terms(self):
        mu = MU
        lam = optimal_lambda(mu)
        assert lam == pytest.approx(LAMBDA_STAR)
        assert 1 / lam == pytest.approx((1 - lam) / (mu - lam))

    def test_utilization(self):
        assert utilization(0.1, 0.4) == pytest.approx(0.25)

    def test_stability_violation_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_queue_length(0.5, 0.4)
        with pytest.raises(ConfigurationError):
            stationary_probability(1, lam=0.3, mu=0.3)

    def test_ratio_below_one_under_stability(self):
        assert 0 < geometric_ratio(0.2, 0.6) < 1


class TestSingleServerSimulation:
    @pytest.fixture(scope="class")
    def observation(self):
        return observe_single_server(
            lam=0.15, mu=0.4, steps=150_000, rng=random.Random(77)
        )

    def test_mean_queue_length_matches(self, observation):
        predicted = expected_queue_length(0.15, 0.4)
        assert observation.mean_queue_length == pytest.approx(
            predicted, rel=0.08
        )

    def test_stationary_distribution_matches(self, observation):
        empirical = [observation.empirical_p(j) for j in range(8)]
        predicted = stationary_distribution(0.15, 0.4, j_max=7)
        assert total_variation_distance(empirical, predicted) < 0.02

    def test_sojourn_time_matches_little(self, observation):
        predicted = expected_sojourn_time(0.15, 0.4)
        assert observation.mean_sojourn_time == pytest.approx(
            predicted, rel=0.08
        )

    def test_departure_rate_is_lambda(self, observation):
        """Hsu–Burke: the departure process has rate λ."""
        assert observation.departure_rate == pytest.approx(0.15, rel=0.05)

    def test_interdeparture_gaps_geometric(self, observation):
        """Hsu–Burke: interdeparture gaps ~ Geometric(λ)."""
        hist = interdeparture_histogram(observation, max_gap=25)
        empirical = [hist.get(g, 0.0) for g in range(1, 20)]
        predicted = [geometric_pmf(0.15, g) for g in range(1, 20)]
        assert total_variation_distance(empirical, predicted) < 0.03

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            observe_single_server(0.5, 0.4, 100, random.Random(0))
        with pytest.raises(ConfigurationError):
            observe_single_server(0.1, 0.4, 0, random.Random(0))


class TestStationarySampling:
    def test_sample_distribution_matches(self):
        lam, mu = 0.12, 0.3
        rng = random.Random(5)
        counts = {}
        trials = 40_000
        for _ in range(trials):
            j = sample_stationary_queue_length(lam, mu, rng)
            counts[j] = counts.get(j, 0) + 1
        empirical = [counts.get(j, 0) / trials for j in range(6)]
        predicted = stationary_distribution(lam, mu, j_max=5)
        assert total_variation_distance(empirical, predicted) < 0.02


class TestTandemModels:
    def test_model2_deterministic_with_mu_one(self):
        result = simulate_model2([0, 0, 3], mu=1.0, rng=random.Random(0))
        # 3 messages at level 3: last one needs 3 hops, one leaves level 1
        # per step after the pipeline fills: completion = 3 + (3 - 1) = 5.
        assert result.steps == 5

    def test_model3_counts_all_arrivals(self):
        result = simulate_model3(4, 3, mu=0.5, lam=0.2, rng=random.Random(1))
        assert result.delivered == 4
        assert result.steps >= 4 / 0.2 * 0.5  # sanity: not absurdly fast

    def test_model4_reports_initial_backlog(self):
        result = simulate_model4(
            3, 4, mu=0.4, lam=0.2, rng=random.Random(2)
        )
        assert result.initial_backlog >= 0

    def test_theorem_43_matches_model4_simulation(self):
        k, depth, mu = 10, 4, 0.5
        lam = 0.25
        predicted = model4_prediction(k, depth, mu=mu, lam=lam)
        mean, _samples = mean_completion(
            lambda rng: simulate_model4(k, depth, mu, lam, rng),
            replications=400,
            seed=9,
        )
        assert mean == pytest.approx(predicted, rel=0.06)

    def test_model_chain_ordering(self):
        """Lemmas 4.10/4.11: E[T2] ≤ E[T3] ≤ E[T4] at matched parameters."""
        k, depth, mu = 8, 5, MU
        lam = optimal_lambda(mu)
        reps = 500
        m2, _ = mean_completion(
            lambda rng: simulate_model2((0,) * (depth - 1) + (k,), mu, rng),
            replications=reps,
            seed=3,
        )
        m3, _ = mean_completion(
            lambda rng: simulate_model3(k, depth, mu, lam, rng),
            replications=reps,
            seed=4,
        )
        m4, _ = mean_completion(
            lambda rng: simulate_model4(k, depth, mu, lam, rng),
            replications=reps,
            seed=5,
        )
        slack = 1.03  # Monte-Carlo tolerance
        assert m2 <= m3 * slack
        assert m3 <= m4 * slack

    def test_model3_bounded_by_theorem_43(self):
        k, depth, mu = 6, 4, MU
        lam = optimal_lambda(mu)
        mean, _ = mean_completion(
            lambda rng: simulate_model3(k, depth, mu, lam, rng),
            replications=400,
            seed=6,
        )
        assert mean <= model4_prediction(k, depth, mu=mu, lam=lam) * 1.03

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            simulate_model3(-1, 3, 0.5, 0.2, random.Random(0))
        with pytest.raises(ConfigurationError):
            simulate_model4(2, 0, 0.5, 0.2, random.Random(0))
        with pytest.raises(ConfigurationError):
            simulate_model2([-1], 0.5, random.Random(0))

    def test_radio_completion_phases(self):
        assert radio_completion_phases(100, 24) == 5
        assert radio_completion_phases(96, 24) == 4
        with pytest.raises(ConfigurationError):
            radio_completion_phases(10, 0)


class TestBusyPeriods:
    """Busy/idle cycle structure of the Bernoulli server."""

    def test_mean_busy_period_formula(self):
        from repro.queueing import mean_busy_period, observe_busy_periods

        lam, mu = 0.1, 0.3
        obs = observe_busy_periods(lam, mu, 200_000, random.Random(3))
        assert obs.mean_busy == pytest.approx(
            mean_busy_period(lam, mu), rel=0.05
        )

    def test_mean_idle_period_is_geometric(self):
        from repro.queueing import mean_idle_period, observe_busy_periods

        lam, mu = 0.2, 0.5
        obs = observe_busy_periods(lam, mu, 200_000, random.Random(5))
        assert obs.mean_idle == pytest.approx(
            mean_idle_period(lam), rel=0.05
        )

    def test_busy_fraction_equals_utilization(self):
        """Cycle view consistency: E[B]/(E[B]+E[I]) = λ/µ = 1 − p_0."""
        from repro.queueing import (
            busy_fraction,
            observe_busy_periods,
            utilization,
        )

        lam, mu = 0.15, 0.4
        assert busy_fraction(lam, mu) == pytest.approx(
            utilization(lam, mu)
        )
        obs = observe_busy_periods(lam, mu, 200_000, random.Random(7))
        assert obs.busy_fraction == pytest.approx(lam / mu, rel=0.05)

    def test_validation(self):
        from repro.queueing import mean_busy_period, observe_busy_periods
        from repro.queueing.busy import mean_idle_period

        with pytest.raises(ConfigurationError):
            mean_busy_period(0.5, 0.4)
        with pytest.raises(ConfigurationError):
            mean_idle_period(0.0)
        with pytest.raises(ConfigurationError):
            observe_busy_periods(0.1, 0.3, 0, random.Random(0))

    def test_empty_observation_is_nan(self):
        from repro.queueing import BusyPeriodObservation

        import math as math_module

        obs = BusyPeriodObservation()
        assert math_module.isnan(obs.mean_busy)
        assert obs.busy_fraction == 0.0
