"""Tests for arrival processes and the streaming collection driver."""

import random

import pytest

from repro.errors import ConfigurationError, SimulationTimeout
from repro.graphs import path, reference_bfs_tree, star
from repro.workloads import (
    BernoulliArrivals,
    BurstArrivals,
    DeterministicSchedule,
    PoissonArrivals,
    run_streaming_collection,
)


class TestArrivalProcesses:
    def test_deterministic_schedule(self):
        schedule = DeterministicSchedule(
            [(0, 3, "a"), (5, 2, "b"), (5, 3, "c")]
        )
        assert schedule.arrivals_at(0) == [(3, "a")]
        assert schedule.arrivals_at(5) == [(2, "b"), (3, "c")]
        assert schedule.arrivals_at(1) == []

    def test_deterministic_negative_slot(self):
        with pytest.raises(ConfigurationError):
            DeterministicSchedule([(-1, 0, "x")])

    def test_bernoulli_rate(self):
        arrivals = BernoulliArrivals(
            sources=range(10), rate=0.3, phase_length=4, seed=1
        )
        total = 0
        phases = 600
        for slot in range(4 * phases):
            batch = arrivals.arrivals_at(slot)
            if slot % 4 != 0:
                assert batch == []
            total += len(batch)
        # 10 sources × 600 phases × 0.3
        assert total == pytest.approx(1800, rel=0.1)

    def test_bernoulli_payloads_unique(self):
        arrivals = BernoulliArrivals(
            sources=range(5), rate=0.8, phase_length=1, seed=2
        )
        payloads = [
            payload
            for slot in range(50)
            for _source, payload in arrivals.arrivals_at(slot)
        ]
        assert len(payloads) == len(set(payloads))

    def test_bernoulli_validation(self):
        with pytest.raises(ConfigurationError):
            BernoulliArrivals([], 1.5, 1, seed=0)
        with pytest.raises(ConfigurationError):
            BernoulliArrivals([], 0.5, 0, seed=0)
        with pytest.raises(ConfigurationError):
            BernoulliArrivals([], 0.5, 1, seed=random.Random(0))

    def test_bernoulli_is_slot_indexed(self):
        """The batch at a slot is a pure function of (seed, slot): an
        idle-aware driver that skips slots sees identical arrivals."""
        dense = BernoulliArrivals(range(6), 0.5, phase_length=3, seed=9)
        sparse = BernoulliArrivals(range(6), 0.5, phase_length=3, seed=9)
        polled = [dense.arrivals_at(s) for s in range(60)]
        for slot in range(0, 60, 6):  # poll every other phase only
            assert sparse.arrivals_at(slot) == polled[slot]
        # And out-of-order / repeated polling changes nothing either.
        assert dense.arrivals_at(0) == polled[0]

    def test_poisson_rate_matches_calibration(self):
        arrivals = PoissonArrivals.per_phase_rate(
            sources=range(8), rate=0.25, phase_length=4, seed=3
        )
        total = sum(
            len(arrivals.arrivals_at(slot)) for slot in range(4 * 2000)
        )
        # 8 sources × 2000 phases × 0.25
        assert total == pytest.approx(4000, rel=0.1)

    def test_poisson_skipped_slots_lose_nothing(self):
        dense = PoissonArrivals(range(4), 7.5, seed=11)
        sparse = PoissonArrivals(range(4), 7.5, seed=11)
        everything = [
            pair for slot in range(400) for pair in dense.arrivals_at(slot)
        ]
        skipped = [
            pair
            for slot in range(9, 400, 10)  # poll 1 slot in 10
            for pair in sparse.arrivals_at(slot)
        ]
        # Same arrivals (late, but never lost), modulo in-gap ordering.
        assert sorted(map(repr, skipped)) == sorted(
            map(repr, everything)
        )

    def test_poisson_rejects_backwards_polls(self):
        arrivals = PoissonArrivals(range(2), 5.0, seed=0)
        arrivals.arrivals_at(10)
        with pytest.raises(ConfigurationError):
            arrivals.arrivals_at(9)

    def test_burst_pattern(self):
        arrivals = BurstArrivals(sources=[1, 2], period=10, bursts=2)
        assert len(arrivals.arrivals_at(0)) == 2
        assert arrivals.arrivals_at(5) == []
        assert len(arrivals.arrivals_at(10)) == 2
        assert arrivals.arrivals_at(20) == []  # bursts exhausted

    def test_burst_jitter_spreads_but_conserves(self):
        arrivals = BurstArrivals(
            sources=range(10), period=20, bursts=3, jitter=6, seed=4
        )
        per_burst = {}
        for slot in range(60):
            for source, payload in arrivals.arrivals_at(slot):
                burst = payload[1]
                assert burst * 20 <= slot <= burst * 20 + 6
                per_burst.setdefault(burst, []).append(source)
        assert {b: sorted(s) for b, s in per_burst.items()} == {
            b: list(range(10)) for b in range(3)
        }

    def test_burst_jitter_requires_seed(self):
        with pytest.raises(ConfigurationError):
            BurstArrivals(sources=[1], period=10, bursts=1, jitter=3)


class TestStreamingDriver:
    def test_all_arrivals_delivered_with_latencies(self):
        graph = path(6)
        tree = reference_bfs_tree(graph, 0)
        schedule = DeterministicSchedule(
            [(0, 5, "a"), (40, 3, "b"), (80, 5, "c")]
        )
        result = run_streaming_collection(
            graph, tree, schedule, seed=3, horizon_slots=100
        )
        assert result.submitted == 3
        assert result.delivered == 3
        assert result.delivery_ratio == 1.0
        for record in result.records:
            assert record.latency is not None and record.latency > 0

    def test_latency_measured_from_submission(self):
        graph = path(4)
        tree = reference_bfs_tree(graph, 0)
        schedule = DeterministicSchedule([(50, 3, "late")])
        result = run_streaming_collection(
            graph, tree, schedule, seed=1, horizon_slots=60
        )
        record = result.records[0]
        assert record.submitted_slot == 50
        assert record.delivered_slot > 50
        assert record.latency == record.delivered_slot - 50

    def test_root_submission_has_zero_latency(self):
        graph = path(3)
        tree = reference_bfs_tree(graph, 0)
        schedule = DeterministicSchedule([(7, 0, "self")])
        result = run_streaming_collection(
            graph, tree, schedule, seed=0, horizon_slots=10
        )
        assert result.records[0].latency == 0

    def test_no_drain_leaves_messages_in_flight(self):
        graph = path(10)
        tree = reference_bfs_tree(graph, 0)
        schedule = DeterministicSchedule([(0, 9, "x")])
        result = run_streaming_collection(
            graph, tree, schedule, seed=2, horizon_slots=5, drain=False
        )
        assert result.delivered == 0
        assert result.delivery_ratio == 0.0

    def test_drain_budget_timeout(self):
        graph = path(10)
        tree = reference_bfs_tree(graph, 0)
        schedule = DeterministicSchedule([(0, 9, "x")])
        with pytest.raises(SimulationTimeout):
            run_streaming_collection(
                graph,
                tree,
                schedule,
                seed=2,
                horizon_slots=1,
                drain=True,
                drain_budget=3,
            )

    def test_unknown_source_rejected(self):
        graph = path(3)
        tree = reference_bfs_tree(graph, 0)
        schedule = DeterministicSchedule([(0, 99, "x")])
        with pytest.raises(ConfigurationError):
            run_streaming_collection(
                graph, tree, schedule, seed=0, horizon_slots=2
            )

    def test_sustained_bernoulli_stream_is_stable_below_mu(self):
        """Offered load well under the service rate: everything delivered,
        latencies stay bounded (no queue blow-up)."""
        graph = star(8)
        tree = reference_bfs_tree(graph, 0)
        from repro.core.slots import SlotStructure, decay_budget

        phase_length = SlotStructure(
            decay_budget(graph.max_degree()), 3, True
        ).phase_length
        arrivals = BernoulliArrivals(
            sources=[n for n in graph.nodes if n != 0],
            rate=0.02,  # aggregate 0.14/phase « µ
            phase_length=phase_length,
            seed=5,
        )
        result = run_streaming_collection(
            graph, tree, arrivals, seed=6, horizon_slots=300 * phase_length
        )
        assert result.delivery_ratio == 1.0
        assert result.submitted > 10
        # Mean sojourn in phases is small: the system is far from the knee.
        assert result.mean_latency_phases(phase_length) < 10


class TestStreamingP2p:
    def test_routed_stream_delivers_with_latency(self):
        from repro.workloads import run_streaming_p2p

        graph = path(8)
        tree = reference_bfs_tree(graph, 0)
        tree.assign_dfs_intervals()
        schedule = DeterministicSchedule(
            [(0, 7, "a"), (30, 2, "b"), (60, 7, "c")]
        )
        destinations = {"a": 0, "b": 6, "c": 3}
        result = run_streaming_p2p(
            graph,
            tree,
            schedule,
            destination_of=lambda src, payload: destinations[payload],
            seed=4,
            horizon_slots=80,
        )
        assert result.delivered == 3
        assert all(r.latency is not None for r in result.records)

    def test_unknown_destination_rejected(self):
        from repro.errors import ConfigurationError
        from repro.workloads import run_streaming_p2p

        graph = path(4)
        tree = reference_bfs_tree(graph, 0)
        tree.assign_dfs_intervals()
        schedule = DeterministicSchedule([(0, 3, "x")])
        with pytest.raises(ConfigurationError):
            run_streaming_p2p(
                graph,
                tree,
                schedule,
                destination_of=lambda s, p: 99,
                seed=0,
                horizon_slots=2,
            )

    def test_hotspot_workload(self):
        """Everyone streams to one destination; all messages arrive."""
        from repro.workloads import run_streaming_p2p

        graph = star(6)
        tree = reference_bfs_tree(graph, 0)
        tree.assign_dfs_intervals()
        events = [(10 * i, 1 + (i % 5), f"m{i}") for i in range(10)]
        schedule = DeterministicSchedule(
            [(s, src, p) for s, src, p in events if src != 5]
        )
        result = run_streaming_p2p(
            graph,
            tree,
            schedule,
            destination_of=lambda s, p: 5,
            seed=2,
            horizon_slots=120,
        )
        assert result.delivery_ratio == 1.0


class TestStreamingBroadcast:
    def test_streamed_broadcasts_reach_everyone(self):
        from repro.workloads import run_streaming_broadcast

        graph = path(5)
        tree = reference_bfs_tree(graph, 0)
        schedule = DeterministicSchedule(
            [(0, 4, "b0"), (100, 2, "b1")]
        )
        result = run_streaming_broadcast(
            graph, tree, schedule, seed=3, horizon_slots=150
        )
        assert result.delivered_everywhere == 2
        assert result.mean_latency > 0

    def test_latency_counted_from_submission(self):
        from repro.workloads import run_streaming_broadcast

        graph = path(4)
        tree = reference_bfs_tree(graph, 0)
        schedule = DeterministicSchedule([(40, 3, "late")])
        result = run_streaming_broadcast(
            graph, tree, schedule, seed=1, horizon_slots=60
        )
        record = result.records[0]
        assert record.submitted_slot == 40
        assert record.everywhere_slot > 40


class TestStreamingWithSingleClass:
    def test_level_classes_one_also_streams(self):
        graph = path(6)
        tree = reference_bfs_tree(graph, 0)
        schedule = DeterministicSchedule([(0, 5, "a"), (20, 4, "b")])
        result = run_streaming_collection(
            graph, tree, schedule, seed=3, horizon_slots=40, level_classes=1
        )
        assert result.delivered == 2
