"""Failure-model unit tests: composition, boundaries, and the richer
models of ``repro.radio.faults`` (churn, fading, regional, jamming),
plus the engine's fault observability (DropEvent, dropped counters)."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.graphs import Graph, path
from repro.radio import (
    AdversarialJammer,
    BernoulliLinkLoss,
    ComposedFailures,
    CrashSchedule,
    EventTrace,
    FailureModel,
    GilbertElliott,
    MarkovChurn,
    PermanentCrashes,
    RadioNetwork,
    RegionOutage,
    ScriptedProcess,
    SilentProcess,
    Transmission,
    subtree_outage,
)


class TestComposition:
    def test_empty_composition_is_failure_free(self):
        model = ComposedFailures([])
        assert not model.node_down(0, 0)
        assert not model.drop_delivery(0, 1, 0)

    def test_overlapping_models_union(self):
        """Two models covering overlapping slots for the same node: the
        composition is the union, with no double-counting artifacts."""
        model = ComposedFailures(
            [
                CrashSchedule({1: [(0, 20)]}),
                CrashSchedule({1: [(10, 30)], 2: [(5, 6)]}),
            ]
        )
        assert all(model.node_down(1, s) for s in range(0, 30))
        assert not model.node_down(1, 30)
        assert model.node_down(2, 5)
        assert not model.node_down(2, 6)

    def test_composition_mixes_down_and_drop(self):
        model = ComposedFailures(
            [
                PermanentCrashes({7}),
                BernoulliLinkLoss(1.0, random.Random(0)),
            ]
        )
        assert model.node_down(7, 123)
        assert not model.node_down(8, 123)
        assert model.drop_delivery(0, 1, 0)


class TestCrashScheduleBoundaries:
    def test_half_open_interval(self):
        model = CrashSchedule({3: [(5, 10)]})
        assert not model.node_down(3, 4)
        assert model.node_down(3, 5)  # start inclusive
        assert model.node_down(3, 9)
        assert not model.node_down(3, 10)  # end exclusive

    def test_adjacent_intervals_have_no_gap(self):
        model = CrashSchedule({3: [(0, 5), (5, 10)]})
        assert all(model.node_down(3, s) for s in range(0, 10))
        assert not model.node_down(3, 10)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            CrashSchedule({0: [(7, 7)]})


class TestMarkovChurn:
    def test_unlisted_nodes_never_fail(self):
        model = MarkovChurn([1], fail_rate=1.0, recover_rate=0.0, seed=0)
        assert not model.node_down(0, 100)
        assert not model.node_down(2, 100)

    def test_deterministic_per_seed(self):
        a = MarkovChurn([1, 2], 0.05, 0.1, seed=42)
        b = MarkovChurn([1, 2], 0.05, 0.1, seed=42)
        trace_a = [(n, s, a.node_down(n, s)) for s in range(300) for n in (1, 2)]
        trace_b = [(n, s, b.node_down(n, s)) for s in range(300) for n in (1, 2)]
        assert trace_a == trace_b

    def test_query_order_does_not_change_realization(self):
        """Per-node derived streams: interleaving queries across nodes
        differently must not change any node's chain."""
        a = MarkovChurn([1, 2], 0.05, 0.1, seed=7)
        b = MarkovChurn([1, 2], 0.05, 0.1, seed=7)
        trace_a = [a.node_down(1, s) for s in range(200)]
        for s in range(200):  # node 2 interleaved first on the other copy
            b.node_down(2, s)
        trace_b = [b.node_down(1, s) for s in range(200)]
        assert trace_a == trace_b

    def test_kills_and_revives(self):
        model = MarkovChurn([5], fail_rate=0.05, recover_rate=0.1, seed=3)
        states = [model.node_down(5, s) for s in range(2_000)]
        assert any(states) and not all(states)
        events = model.churn_events(5)
        assert any(down for _, _, down in events)
        assert any(not down for _, _, down in events)

    def test_start_down(self):
        model = MarkovChurn(
            [1], fail_rate=0.0, recover_rate=0.0, seed=0, start_down=[1]
        )
        assert model.node_down(1, 0)
        assert model.node_down(1, 500)  # recover_rate 0: never comes back

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MarkovChurn([1], fail_rate=1.5, recover_rate=0.1, seed=0)
        with pytest.raises(ConfigurationError):
            MarkovChurn([1], 0.1, 0.1, seed=0, start_down=[9])


class TestGilbertElliott:
    def test_losses_are_bursty(self):
        """With slow transitions, losses cluster into runs — the whole
        point over Bernoulli.  Expected run length 1/p_good = 20."""
        model = GilbertElliott(p_bad=0.01, p_good=0.05, seed=11)
        drops = [model.drop_delivery(0, 1, s) for s in range(20_000)]
        loss_rate = sum(drops) / len(drops)
        # Stationary loss = p_bad/(p_bad+p_good) = 1/6.
        assert 0.05 < loss_rate < 0.35
        runs = []
        current = 0
        for dropped in drops:
            if dropped:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs and max(runs) >= 5  # bursts, not isolated drops

    def test_links_are_independent(self):
        model = GilbertElliott(p_bad=0.05, p_good=0.05, seed=2)
        a = [model.link_bad(0, 1, s) for s in range(500)]
        b = [model.link_bad(1, 0, s) for s in range(500)]
        assert a != b  # directed links evolve independently

    def test_loss_good_floor(self):
        model = GilbertElliott(p_bad=0.0, p_good=1.0, loss_good=1.0, seed=0)
        assert model.drop_delivery(0, 1, 10)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GilbertElliott(p_bad=2.0, p_good=0.1)


class TestRegionOutage:
    def test_window_semantics(self):
        model = RegionOutage([1, 2], start=10, end=20)
        assert not model.node_down(1, 9)
        assert model.node_down(1, 10) and model.node_down(2, 19)
        assert not model.node_down(2, 20)
        assert not model.node_down(3, 15)

    def test_permanent(self):
        model = RegionOutage([4], start=7)
        assert model.node_down(4, 1_000_000)

    def test_subtree_outage(self):
        from repro.graphs import reference_bfs_tree

        graph = path(5)
        tree = reference_bfs_tree(graph, 0)
        model = subtree_outage(tree, 2, start=0)
        assert model.region == {2, 3, 4}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RegionOutage([1], start=5, end=5)


class TestAdversarialJammer:
    def test_duty_cycle(self):
        jam = AdversarialJammer(period=10, duty=3)
        pattern = [jam.jamming(s) for s in range(10)]
        assert pattern == [True] * 3 + [False] * 7
        assert jam.jamming(10) and not jam.jamming(13)

    def test_window_and_targets(self):
        jam = AdversarialJammer(
            period=4, duty=4, targets=[1], start=100, end=200
        )
        assert not jam.drop_delivery(0, 1, 99)
        assert jam.drop_delivery(0, 1, 100)
        assert not jam.drop_delivery(0, 2, 100)  # untargeted receiver
        assert not jam.drop_delivery(0, 1, 200)

    def test_offset_alignment(self):
        """The adversary can phase-align against the public schedule."""
        jam = AdversarialJammer(period=2, duty=1, offset=1)
        assert not jam.jamming(0) and jam.jamming(1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdversarialJammer(period=0, duty=0)
        with pytest.raises(ConfigurationError):
            AdversarialJammer(period=4, duty=5)


def _two_senders_one_listener():
    graph = Graph.from_edges([(0, 1), (0, 2)])
    net_processes = {
        1: ScriptedProcess(1, {0: Transmission("a", 0)}),
        2: ScriptedProcess(2, {0: Transmission("b", 0)}),
        0: SilentProcess(0),
    }
    return graph, net_processes


class TestEngineFaultObservability:
    def test_drop_event_and_counter(self):
        graph = path(2)
        trace = EventTrace()
        net = RadioNetwork(
            graph,
            trace=trace,
            failures=BernoulliLinkLoss(1.0, random.Random(0)),
        )
        net.attach(ScriptedProcess(0, {0: Transmission("x", 0)}))
        listener = SilentProcess(1)
        net.attach(listener)
        net.step()
        assert listener.heard == []
        assert net.stats.dropped == 1
        assert net.stats.deliveries == 0
        (drop,) = trace.drops
        assert (drop.slot, drop.receiver, drop.sender) == (0, 1, 0)
        assert drop.payload == "x"
        assert net.stats.as_dict()["dropped"] == 1

    def test_down_node_slots_counter(self):
        graph = path(3)
        net = RadioNetwork(graph, failures=CrashSchedule({1: [(0, 4)]}))
        net.attach_all(SilentProcess)
        for _ in range(10):
            net.step()
        assert net.stats.down_node_slots == 4
        assert net.stats.as_dict()["down_node_slots"] == 4

    def test_capture_effect_composes_with_link_loss(self):
        """§8 remark (3) + fading in one run: the captured message is
        still subject to link loss, observable as a drop."""
        graph, processes = _two_senders_one_listener()
        trace = EventTrace()
        net = RadioNetwork(
            graph,
            trace=trace,
            capture_effect=True,
            capture_seed=1,
            failures=BernoulliLinkLoss(1.0, random.Random(3)),
        )
        for process in processes.values():
            net.attach(process)
        net.step()
        assert processes[0].heard == []
        assert net.stats.collisions == 1
        assert net.stats.dropped == 1
        assert net.stats.deliveries == 0
        (drop,) = trace.drops
        assert drop.sender in (1, 2)

    def test_capture_effect_without_loss_still_delivers(self):
        graph, processes = _two_senders_one_listener()
        net = RadioNetwork(
            graph,
            capture_effect=True,
            capture_seed=1,
            failures=BernoulliLinkLoss(0.0, random.Random(3)),
        )
        for process in processes.values():
            net.attach(process)
        net.step()
        assert len(processes[0].heard) == 1
        assert net.stats.dropped == 0

    def test_crash_schedule_and_link_loss_in_one_collection_run(self):
        """CrashSchedule + BernoulliLinkLoss composed over a real protocol
        run: collection still completes once the relay recovers."""
        from repro.core.collection import build_collection_network
        from repro.graphs import reference_bfs_tree

        graph = path(4)
        tree = reference_bfs_tree(graph, 0)
        network, processes, _ = build_collection_network(
            graph, tree, {3: ["m1", "m2"]}, seed=5, strict=False
        )
        network.failures = ComposedFailures(
            [
                CrashSchedule({1: [(10, 200)]}),
                BernoulliLinkLoss(0.1, random.Random(9)),
            ]
        )
        network.run(
            200_000,
            until=lambda n: len({m.msg_id for m in processes[0].delivered})
            >= 2,
        )
        assert {m.payload for m in processes[0].delivered} >= {"m1", "m2"}
        assert network.stats.dropped > 0
        assert network.stats.down_node_slots == 190


class TestRunValidation:
    def test_check_every_zero_rejected_upfront(self):
        """check_every=0 used to raise ZeroDivisionError mid-run."""
        graph = path(2)
        net = RadioNetwork(graph)
        net.attach_all(SilentProcess)
        with pytest.raises(ConfigurationError):
            net.run(10, until=lambda n: False, check_every=0)
        with pytest.raises(ConfigurationError):
            net.run_until_done(10, check_every=-3)
        assert net.slot == 0  # rejected before any slot executed

    def test_base_failure_model_is_inert(self):
        model = FailureModel()
        assert not model.node_down(0, 0)
        assert not model.drop_delivery(0, 1, 2)
