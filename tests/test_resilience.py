"""Tests for the hardened transport and self-healing collection stack:
retry budgets (:class:`RetryPolicy`), the ack-timeout watchdog, parent
re-attachment, partition detection, and the resilience harness."""

import pytest

from repro.core import (
    RepairPolicy,
    RetryPolicy,
    run_collection,
    run_resilient_collection,
)
from repro.core.repair import NeighborRegistry, build_resilient_collection_network
from repro.errors import ConfigurationError
from repro.graphs import Graph, layered_band, path, reference_bfs_tree
from repro.radio.faults import MarkovChurn, RegionOutage


def diamond():
    """Node 3 has two routes to the root: via 1 (its BFS parent) or 2."""
    graph = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
    tree = reference_bfs_tree(graph, 0)
    return graph, tree


class TestRetryPolicy:
    def test_backoff_doubles_up_to_cap(self):
        policy = RetryPolicy(max_attempts=None, backoff_cap=4)
        assert [policy.backoff_phases(k) for k in (1, 2, 3, 4, 5)] == [
            0,
            1,
            3,
            4,
            4,
        ]

    def test_zero_cap_means_no_backoff(self):
        policy = RetryPolicy(backoff_cap=0)
        assert policy.backoff_phases(5) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_cap=-1)


class TestFailureFreeParity:
    def test_full_delivery_no_repairs(self):
        graph, tree = diamond()
        result = run_resilient_collection(
            graph, tree, {4: ["a", "b"], 2: ["c"]}, seed=3
        )
        assert result.messages_delivered == result.expected == 3
        assert result.delivery_ratio == 1.0
        assert result.repairs == []
        assert not result.partition_detected
        assert not result.timed_out

    def test_matches_plain_collection_payloads(self):
        graph = layered_band(4, 3)
        tree = reference_bfs_tree(graph, 0)
        deepest = max(tree.nodes, key=lambda v: (tree.level[v], v))
        sources = {deepest: ["x", "y", "z"]}
        plain = run_collection(graph, tree, sources, seed=9)
        hard = run_resilient_collection(graph, tree, sources, seed=9)
        assert {m.payload for m in plain.delivered} == {
            m.payload for m in hard.delivered
        }

    def test_exactly_once_root_delivery(self):
        graph, tree = diamond()
        result = run_resilient_collection(
            graph, tree, {4: [f"p{i}" for i in range(5)]}, seed=1
        )
        msg_ids = [m.msg_id for m in result.delivered]
        assert len(msg_ids) == len(set(msg_ids)) == 5


class TestSelfHealing:
    def test_reattach_after_parent_crash(self):
        """Node 3's parent (1) dies forever; 3 must re-attach via 2."""
        graph, tree = diamond()
        assert tree.parent[3] == 1
        result = run_resilient_collection(
            graph,
            tree,
            {4: ["a", "b"], 3: ["c"]},
            seed=11,
            failures=RegionOutage([1], start=0, end=None),
            down_grace_slots=2_000,
        )
        assert result.delivery_ratio == 1.0
        assert not result.timed_out
        (repair,) = [r for r in result.repairs if r.node == 3]
        assert repair.old_parent == 1
        assert repair.new_parent == 2
        assert repair.new_level == 2  # level preserved: 2 is also at level 1

    def test_kill_and_revive_interior_node_full_delivery(self):
        """The ISSUE acceptance scenario: MarkovChurn kills and revives a
        non-root interior station mid-collection, yet every message from
        the root's surviving component is delivered."""
        graph, tree = diamond()
        churn = MarkovChurn([1], fail_rate=0.02, recover_rate=0.01, seed=2)
        result = run_resilient_collection(
            graph,
            tree,
            {4: [f"m{i}" for i in range(6)], 1: ["d"]},
            seed=11,
            failures=churn,
            down_grace_slots=2_000,
        )
        # The victim really did flap: at least one down and one up event.
        events = churn.churn_events(1)
        assert any(down for _, _, down in events)
        assert any(not down for _, _, down in events)
        assert result.messages_delivered == result.expected == 7
        assert result.delivery_ratio == 1.0
        assert len(result.repairs) >= 1
        assert not result.timed_out

    def test_repair_preserves_message_identity(self):
        graph, tree = diamond()
        result = run_resilient_collection(
            graph,
            tree,
            {4: [f"q{i}" for i in range(4)]},
            seed=11,
            failures=RegionOutage([1], start=0, end=None),
            down_grace_slots=2_000,
        )
        payloads = sorted(m.payload for m in result.delivered)
        assert payloads == ["q0", "q1", "q2", "q3"]
        msg_ids = [m.msg_id for m in result.delivered]
        assert len(msg_ids) == len(set(msg_ids))


class TestPartition:
    def test_structured_report_not_timeout(self):
        """A severed path must end with a partition report, not a hang."""
        graph = path(6)
        tree = reference_bfs_tree(graph, 0)
        result = run_resilient_collection(
            graph,
            tree,
            {5: ["far"], 1: ["near"]},
            seed=4,
            failures=RegionOutage([2], start=0, end=None),
            down_grace_slots=2_000,
        )
        assert not result.timed_out
        assert result.partition_detected
        assert set(result.unreachable) == {2, 3, 4, 5}
        assert set(result.declared_partitioned) <= {3, 4, 5}
        assert result.partition_precision == 1.0
        # The near side delivers; the far message is reported undelivered.
        assert {m.payload for m in result.delivered} == {"near"}
        assert result.reachable_delivery_ratio == 1.0
        assert len(result.undelivered) == 1

    def test_partition_scoring_on_intact_network(self):
        graph = path(4)
        tree = reference_bfs_tree(graph, 0)
        result = run_resilient_collection(graph, tree, {3: ["m"]}, seed=0)
        assert result.unreachable == ()
        assert result.declared_partitioned == ()
        assert result.partition_precision == 1.0  # vacuous: no declarations
        assert result.partition_recall == 1.0


class TestNeighborRegistry:
    def test_candidate_filtering(self):
        graph, tree = diamond()
        _, _, _, registry = build_resilient_collection_network(
            graph, tree, {4: ["a"]}, seed=0
        )
        # Node 3 (level 2) loses parent 1: the only alternative at
        # level ≤ 2 that isn't excluded is 2.
        assert registry.best_candidate(3, level=2, exclude={1, 3}, slot=0) == 2

    def test_no_candidate_when_all_excluded(self):
        graph = path(3)
        tree = reference_bfs_tree(graph, 0)
        _, _, _, registry = build_resilient_collection_network(
            graph, tree, {2: ["a"]}, seed=0
        )
        assert (
            registry.best_candidate(2, level=2, exclude={1, 2}, slot=0) is None
        )

    def test_cycle_rejected(self):
        """A node must never adopt its own descendant as parent."""
        graph = path(3)
        tree = reference_bfs_tree(graph, 0)
        _, _, _, registry = build_resilient_collection_network(
            graph, tree, {2: ["a"]}, seed=0
        )
        assert registry._would_cycle(1, 2)  # 2's parent chain runs through 1
        assert not registry._would_cycle(2, 1)


class TestRepairPolicyKnobs:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            RepairPolicy(suspect_after=0)

    def test_higher_threshold_delays_repair(self):
        graph, tree = diamond()
        patient = run_resilient_collection(
            graph,
            tree,
            {4: ["a"]},
            seed=11,
            failures=RegionOutage([1], start=0, end=None),
            policy=RepairPolicy(suspect_after=6),
            down_grace_slots=4_000,
        )
        eager = run_resilient_collection(
            graph,
            tree,
            {4: ["a"]},
            seed=11,
            failures=RegionOutage([1], start=0, end=None),
            policy=RepairPolicy(suspect_after=2),
            down_grace_slots=4_000,
        )
        assert patient.delivery_ratio == eager.delivery_ratio == 1.0
        repair_p = [r for r in patient.repairs if r.node == 3][0]
        repair_e = [r for r in eager.repairs if r.node == 3][0]
        assert repair_e.slot < repair_p.slot


class TestResilienceHarness:
    def test_suite_smoke_and_table(self):
        from repro.analysis import resilience_table, run_resilience_suite

        graph = layered_band(4, 2)
        tree = reference_bfs_tree(graph, 0)
        deepest = max(tree.nodes, key=lambda v: (tree.level[v], v))
        reports = run_resilience_suite(
            graph,
            tree,
            {deepest: ["a", "b"]},
            seed=5,
            down_grace_slots=2_000,
        )
        assert {r.scenario for r in reports} == {
            "churn",
            "fading",
            "jammer",
            "blackout",
            "partition",
        }
        for report in reports:
            assert not report.result.timed_out, report.scenario
            assert report.slowdown >= 1.0 or report.delivery_ratio < 1.0
        table = resilience_table(reports)
        assert "partition" in table and "slowdown" in table

    def test_empty_sources_rejected(self):
        from repro.analysis import run_resilience_suite

        graph = path(3)
        tree = reference_bfs_tree(graph, 0)
        with pytest.raises(ConfigurationError):
            run_resilience_suite(graph, tree, {}, seed=0)
