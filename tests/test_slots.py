"""Unit tests for the multiplexed slot schedule."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SlotKind, SlotStructure, decay_budget
from repro.errors import ConfigurationError


class TestDecayBudget:
    def test_paper_formula(self):
        # 2·ceil(log2 Δ)
        assert decay_budget(2) == 2
        assert decay_budget(3) == 4
        assert decay_budget(4) == 4
        assert decay_budget(5) == 6
        assert decay_budget(8) == 6
        assert decay_budget(9) == 8
        assert decay_budget(1024) == 20

    def test_degenerate_degrees(self):
        assert decay_budget(0) == 2
        assert decay_budget(1) == 2

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            decay_budget(-1)


class TestSlotStructure:
    def test_phase_length(self):
        s = SlotStructure(decay_budget=4, level_classes=3, with_acks=True)
        assert s.phase_length == 4 * 3 * 2

    def test_phase_length_without_acks(self):
        s = SlotStructure(decay_budget=4, level_classes=3, with_acks=False)
        assert s.phase_length == 12

    def test_decode_first_phase_layout(self):
        s = SlotStructure(decay_budget=2, level_classes=3, with_acks=True)
        expected = [
            # (decay_step, level_class, kind)
            (0, 0, SlotKind.DATA),
            (0, 0, SlotKind.ACK),
            (0, 1, SlotKind.DATA),
            (0, 1, SlotKind.ACK),
            (0, 2, SlotKind.DATA),
            (0, 2, SlotKind.ACK),
            (1, 0, SlotKind.DATA),
            (1, 0, SlotKind.ACK),
            (1, 1, SlotKind.DATA),
            (1, 1, SlotKind.ACK),
            (1, 2, SlotKind.DATA),
            (1, 2, SlotKind.ACK),
        ]
        for slot, (step, cls, kind) in enumerate(expected):
            info = s.decode(slot)
            assert info.phase == 0
            assert (info.decay_step, info.level_class, info.kind) == (
                step,
                cls,
                kind,
            )

    def test_phase_advances(self):
        s = SlotStructure(decay_budget=2, level_classes=3, with_acks=True)
        assert s.decode(s.phase_length).phase == 1
        assert s.decode(s.phase_length).decay_step == 0

    def test_is_data_slot_for_respects_level_class(self):
        s = SlotStructure(decay_budget=2, level_classes=3, with_acks=True)
        # Level 4 -> class 1; its data slots in phase 0 are slots 2 and 8.
        slots = [t for t in range(s.phase_length) if s.is_data_slot_for(t, 4)]
        assert slots == [2, 8]

    def test_every_data_slot_belongs_to_exactly_one_class(self):
        s = SlotStructure(decay_budget=3, level_classes=3, with_acks=True)
        for t in range(2 * s.phase_length):
            owners = [
                cls for cls in range(3) if s.is_data_slot_for(t, cls)
            ]
            info = s.decode(t)
            if info.kind is SlotKind.DATA:
                assert len(owners) == 1
            else:
                assert owners == []

    def test_ack_slot_after(self):
        s = SlotStructure(decay_budget=2, level_classes=3, with_acks=True)
        assert s.ack_slot_after(0) == 1
        assert s.ack_slot_after(2) == 3
        assert s.decode(s.ack_slot_after(2)).kind is SlotKind.ACK

    def test_ack_slot_after_rejects_ack_slot(self):
        s = SlotStructure(decay_budget=2, level_classes=3, with_acks=True)
        with pytest.raises(ConfigurationError):
            s.ack_slot_after(1)

    def test_ack_slot_after_without_acks(self):
        s = SlotStructure(decay_budget=2, with_acks=False)
        with pytest.raises(ConfigurationError):
            s.ack_slot_after(0)

    def test_single_class_schedule(self):
        s = SlotStructure(decay_budget=2, level_classes=1, with_acks=True)
        # data, ack, data, ack ...
        assert s.decode(0).kind is SlotKind.DATA
        assert s.decode(1).kind is SlotKind.ACK
        assert s.is_data_slot_for(0, 0) and s.is_data_slot_for(0, 7)

    def test_phase_helpers(self):
        s = SlotStructure(decay_budget=2, level_classes=3)
        assert s.phase_of(0) == 0
        assert s.first_slot_of_phase(2) == 2 * s.phase_length
        assert s.slots_for_phases(5) == 5 * s.phase_length

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SlotStructure(decay_budget=0)
        with pytest.raises(ConfigurationError):
            SlotStructure(decay_budget=2, level_classes=0)


@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=4),
    st.booleans(),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=120)
def test_decode_is_consistent(budget, classes, acks, slot):
    """Decoded fields always reconstruct the original slot number."""
    s = SlotStructure(budget, classes, acks)
    info = s.decode(slot)
    assert 0 <= info.decay_step < budget
    assert 0 <= info.level_class < classes
    width = 2 if acks else 1
    reconstructed = (
        info.phase * s.phase_length
        + info.decay_step * classes * width
        + info.level_class * width
        + (1 if info.kind is SlotKind.ACK else 0)
    )
    assert reconstructed == slot


@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=2_000),
)
@settings(max_examples=80)
def test_data_slots_per_phase_count(budget, classes, phase):
    """Each level class gets exactly ``budget`` data slots per phase."""
    s = SlotStructure(budget, classes, with_acks=True)
    start = s.first_slot_of_phase(phase)
    for cls in range(classes):
        count = sum(
            1
            for t in range(start, start + s.phase_length)
            if s.is_data_slot_for(t, cls)
        )
        assert count == budget
