"""Tests for point-to-point transmission (§5)."""

import random

import pytest

from repro.core import p2p_reference_slots, run_point_to_point
from repro.core.point_to_point import build_p2p_network
from repro.errors import ConfigurationError
from repro.graphs import (
    balanced_tree,
    grid,
    path,
    random_geometric,
    reference_bfs_tree,
    star,
)


def prepared(graph, root=0):
    tree = reference_bfs_tree(graph, root)
    tree.assign_dfs_intervals()
    return tree


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path(8),
            lambda: star(9),
            lambda: grid(3, 4),
            lambda: balanced_tree(2, 3),
            lambda: random_geometric(18, 0.42, random.Random(4)),
        ],
        ids=["path", "star", "grid", "tree", "rgg"],
    )
    def test_batch_delivery(self, graph_factory):
        graph = graph_factory()
        tree = prepared(graph)
        nodes = list(graph.nodes)
        batch = [
            (nodes[i], nodes[(3 * i + 5) % len(nodes)], f"pay{i}")
            for i in range(8)
            if nodes[i] != nodes[(3 * i + 5) % len(nodes)]
        ]
        result = run_point_to_point(graph, tree, batch, seed=6)
        got = {
            (m.origin, dest, m.payload)
            for dest, msgs in result.delivered.items()
            for m in msgs
        }
        assert got == set(batch)

    def test_exactly_once(self):
        graph = grid(3, 3)
        tree = prepared(graph)
        batch = [(8, 6, "a"), (2, 7, "b"), (5, 0, "c"), (0, 8, "d")]
        result = run_point_to_point(graph, tree, batch, seed=2)
        assert result.messages_delivered == len(batch)

    def test_self_send_is_immediate(self):
        graph = path(4)
        tree = prepared(graph)
        result = run_point_to_point(graph, tree, [(2, 2, "loop")], seed=0)
        assert result.slots == 0
        assert result.delivered[2][0].payload == "loop"

    def test_sibling_to_sibling_turns_at_lca(self):
        """Message between two leaves of a star passes through the center."""
        graph = star(5)
        tree = prepared(graph)
        result = run_point_to_point(graph, tree, [(1, 4, "x")], seed=1)
        assert result.delivered[4][0].payload == "x"

    def test_root_to_leaf_descends_only(self):
        graph = path(6)
        tree = prepared(graph)
        result = run_point_to_point(graph, tree, [(0, 5, "down")], seed=3)
        assert result.delivered[5][0].payload == "down"
        # Downward-only traffic: the up channel never carries data.
        up_stats = result.stats.per_channel.get(0)
        if up_stats is not None:
            assert up_stats.transmissions == 0

    def test_leaf_to_root_ascends_only(self):
        graph = path(6)
        tree = prepared(graph)
        result = run_point_to_point(graph, tree, [(5, 0, "up")], seed=3)
        assert result.delivered[0][0].payload == "up"
        down_stats = result.stats.per_channel.get(1)
        if down_stats is not None:
            assert down_stats.transmissions == 0

    def test_all_pairs_small_graph(self):
        graph = path(5)
        tree = prepared(graph)
        batch = [
            (u, v, f"{u}->{v}")
            for u in graph.nodes
            for v in graph.nodes
            if u != v
        ]
        result = run_point_to_point(graph, tree, batch, seed=8)
        assert result.messages_delivered == len(batch)

    def test_requires_prepared_tree(self):
        graph = path(4)
        tree = reference_bfs_tree(graph, 0)  # no DFS intervals
        with pytest.raises(ConfigurationError):
            run_point_to_point(graph, tree, [(1, 2, "x")], seed=0)

    def test_unknown_station_rejected(self):
        graph = path(4)
        tree = prepared(graph)
        with pytest.raises(ConfigurationError):
            run_point_to_point(graph, tree, [(0, 99, "x")], seed=0)

    def test_deterministic_given_seed(self):
        graph = grid(3, 3)
        tree = prepared(graph)
        batch = [(8, 0, "a"), (1, 7, "b")]
        a = run_point_to_point(graph, tree, batch, seed=12)
        b = run_point_to_point(graph, tree, batch, seed=12)
        assert a.slots == b.slots

    def test_reactive_submission(self):
        graph = path(6)
        tree = prepared(graph)
        network, processes, _slots = build_p2p_network(graph, tree, seed=3)
        processes[5].submit(tree.dfs_number[1], "first")
        network.run(
            100_000, until=lambda n: len(processes[1].delivered) >= 1
        )
        processes[1].submit(tree.dfs_number[5], "reply")
        network.run(
            100_000, until=lambda n: len(processes[5].delivered) >= 1
        )
        assert processes[5].delivered[0].payload == "reply"


class TestPerformanceEnvelope:
    def test_batch_within_reference(self):
        graph = grid(4, 4)
        tree = prepared(graph)
        nodes = list(graph.nodes)
        batch = [
            (nodes[i % 16], nodes[(5 * i + 3) % 16], i)
            for i in range(12)
            if nodes[i % 16] != nodes[(5 * i + 3) % 16]
        ]
        bound = p2p_reference_slots(
            len(batch), tree.depth, graph.max_degree(), level_classes=3
        )
        slots = [
            run_point_to_point(graph, tree, batch, seed=s).slots
            for s in range(5)
        ]
        assert sum(slots) / len(slots) <= 2 * bound

    def test_reference_formula_monotone(self):
        assert p2p_reference_slots(10, 4, 8) < p2p_reference_slots(20, 4, 8)
        assert p2p_reference_slots(10, 4, 8) < p2p_reference_slots(10, 9, 8)
