"""Executable version of docs/tutorial.md — the doc's code must work."""

import random

from repro.core.decay import DecaySession
from repro.core.slots import decay_budget
from repro.graphs import random_geometric
from repro.radio import Process, RadioNetwork, Transmission
from repro.rng import RngFactory


class DiscoveryProcess(Process):
    """Announce my ID with window-aligned Decay; collect what I hear.

    (Verbatim from docs/tutorial.md §1.)
    """

    def __init__(self, node_id, budget, windows, rng):
        super().__init__(node_id)
        self.budget = budget
        self.windows = windows
        self._rng = rng
        self._session = None
        self._window = -1
        self.heard_neighbors = set()

    def on_slot(self, slot):
        window = slot // self.budget
        if window >= self.windows:
            return None
        if window != self._window:
            self._window = window
            self._session = DecaySession(self.budget, self._rng)
        if self._session.should_transmit():
            return Transmission(("hello", self.node_id))
        return None

    def on_receive(self, slot, channel, payload):
        kind, sender = payload
        if kind == "hello":
            self.heard_neighbors.add(sender)


def run_discovery(graph, windows, seed):
    budget = decay_budget(graph.max_degree())
    factory = RngFactory(seed=seed)
    network = RadioNetwork(graph)
    processes = {}
    for node in graph.nodes:
        processes[node] = DiscoveryProcess(
            node, budget, windows, factory.for_node(node)
        )
        network.attach(processes[node])
    network.run(windows * budget)
    return processes


class TestTutorialProtocol:
    def test_discovery_learns_the_exact_neighborhood(self):
        graph = random_geometric(25, radius=0.35, rng=random.Random(7))
        processes = run_discovery(graph, windows=120, seed=42)
        for node in graph.nodes:
            assert processes[node].heard_neighbors == set(
                graph.neighbors(node)
            )

    def test_no_phantom_neighbors_ever(self):
        """Even with too few windows, stations never hear non-neighbors."""
        graph = random_geometric(20, radius=0.4, rng=random.Random(3))
        processes = run_discovery(graph, windows=2, seed=1)
        for node in graph.nodes:
            assert processes[node].heard_neighbors <= set(
                graph.neighbors(node)
            )

    def test_more_windows_never_lose_knowledge(self):
        graph = random_geometric(15, radius=0.45, rng=random.Random(5))
        few = run_discovery(graph, windows=3, seed=9)
        many = run_discovery(graph, windows=30, seed=9)
        for node in graph.nodes:
            assert few[node].heard_neighbors <= many[node].heard_neighbors
