"""Tests for the §8-remark extensions and observability tools.

Remark (1): setup knowing only an upper bound N on n.
Remark (2): anonymous stations choosing random IDs.
Remark (3): the capture-effect conflict model (breaks Thm 3.1).
Remark (4): collision detection exposed (unused by the protocols).
Remark (5): congestion concentrates toward the root.
Plus the timeline recorder/renderer and the CLI.
"""

import random

import pytest

from repro.analysis import (
    congestion_profile,
    record_collection_timeline,
    render_timeline,
)
from repro.core import (
    choose_random_ids,
    collision_probability_bound,
    elect_leader,
    id_space_size,
    relabel_graph,
    run_collection,
    run_setup_unknown_n,
)
from repro.errors import ConfigurationError
from repro.graphs import (
    balanced_tree,
    bfs_levels,
    grid,
    path,
    random_geometric,
    reference_bfs_tree,
    star,
)
from repro.radio import RadioNetwork, ScriptedProcess, Transmission


class TestUnknownNSetup:
    @pytest.mark.parametrize(
        "graph_factory",
        [lambda: path(10), lambda: grid(3, 3), lambda: star(8)],
        ids=["path", "grid", "star"],
    )
    def test_completes_with_loose_bound(self, graph_factory):
        graph = graph_factory()
        result = run_setup_unknown_n(
            graph, root=0, seed=5, n_bound=4 * graph.num_nodes
        )
        assert result.complete
        assert result.joined == graph.num_nodes
        assert result.tree is not None
        assert result.tree.level == bfs_levels(graph, 0)

    def test_default_bound(self):
        graph = path(6)
        result = run_setup_unknown_n(graph, root=0, seed=1)
        assert result.complete

    def test_bound_below_n_rejected(self):
        with pytest.raises(ConfigurationError):
            run_setup_unknown_n(path(10), root=0, seed=0, n_bound=5)

    def test_costs_more_than_known_n(self):
        """Quiescence termination pays a quiet-window tail the counting
        version avoids."""
        from repro.core import run_setup

        graph = grid(3, 3)
        known = run_setup(graph, root=0, seed=3)
        unknown = run_setup_unknown_n(
            graph, root=0, seed=3, n_bound=2 * graph.num_nodes
        )
        assert unknown.slots > known.slots


class TestAnonymousIds:
    def test_id_space_size_birthday_bound(self):
        space = id_space_size(100, epsilon=0.01)
        assert collision_probability_bound(100, space) <= 0.01

    def test_assignment_distinct_and_reproducible(self):
        stations = list(range(50))
        a = choose_random_ids(stations, 64, random.Random(7))
        b = choose_random_ids(stations, 64, random.Random(7))
        assert a.distinct
        assert a.ids == b.ids

    def test_collision_rate_matches_bound(self):
        """Empirical collision frequency ≤ the birthday bound."""
        stations = list(range(20))
        space = id_space_size(20, epsilon=0.05)
        collisions = 0
        trials = 3_000
        rng = random.Random(11)
        for _ in range(trials):
            ids = [rng.randrange(space) for _ in stations]
            if len(set(ids)) != len(ids):
                collisions += 1
        assert collisions / trials <= 0.05 * 1.5  # sampling slack

    def test_relabel_preserves_structure(self):
        graph = grid(3, 3)
        assignment = choose_random_ids(
            list(graph.nodes), 16, random.Random(3)
        )
        relabeled = relabel_graph(graph, assignment)
        assert relabeled.num_nodes == graph.num_nodes
        assert relabeled.num_edges == graph.num_edges
        assert relabeled.max_degree() == graph.max_degree()

    def test_anonymous_network_elects_a_leader(self):
        """End-to-end remark (2): random IDs then the usual election."""
        graph = random_geometric(12, 0.5, random.Random(9))
        assignment = choose_random_ids(
            list(graph.nodes), 16, random.Random(10)
        )
        relabeled = relabel_graph(graph, assignment)
        result = elect_leader(relabeled, seed=4)
        assert result.leaders == [max(relabeled.nodes)]

    def test_too_many_stations_rejected(self):
        with pytest.raises(ConfigurationError):
            choose_random_ids(list(range(10)), 5, random.Random(0))

    def test_relabel_requires_distinct(self):
        from repro.core import AnonymousIdAssignment

        bad = AnonymousIdAssignment(ids={0: 7, 1: 7}, space=10, attempts=1)
        with pytest.raises(ConfigurationError):
            relabel_graph(path(2), bad)


class TestCaptureEffectModel:
    def test_collision_delivers_one_message(self):
        graph = star(3)
        net = RadioNetwork(graph, capture_effect=True, capture_seed=5)
        center = ScriptedProcess(0)
        net.attach(center)
        net.attach(ScriptedProcess(1, {0: Transmission("a")}))
        net.attach(ScriptedProcess(2, {0: Transmission("b")}))
        net.step()
        assert len(center.heard) == 1
        assert center.heard[0][2] in ("a", "b")

    def test_capture_choice_is_seeded(self):
        def run(seed):
            graph = star(3)
            net = RadioNetwork(graph, capture_effect=True, capture_seed=seed)
            center = ScriptedProcess(0)
            net.attach(center)
            net.attach(ScriptedProcess(1, {0: Transmission("a")}))
            net.attach(ScriptedProcess(2, {0: Transmission("b")}))
            net.step()
            return center.heard[0][2]

        assert run(3) == run(3)

    def test_ack_determinism_breaks_under_capture(self):
        """Remark (3): 'In this model our deterministic acknowledgement
        mechanism is no longer valid' — duplicates appear (non-strict
        transport tolerates and dedupes them; delivery still completes)."""
        from repro.core.collection import build_collection_network
        from repro.graphs import Graph

        # The paper's Figure 1 shape: u, u' at level 2 with *distinct*
        # designated parents v, v', plus the cross edges that make the
        # two acknowledgements collide at both senders.
        graph = Graph.from_edges(
            [(0, 1), (0, 2), (1, 3), (2, 4), (3, 2), (4, 1)]
        )
        # Force the Figure-1 parent assignment (3 under 1, 4 under 2);
        # the smallest-ID rule of reference_bfs_tree would hang both
        # leaves under 1 and the scenario would vanish.
        from repro.graphs import BFSTree

        tree = BFSTree(
            root=0,
            parent={0: 0, 1: 0, 2: 0, 3: 1, 4: 2},
            level={0: 0, 1: 1, 2: 1, 3: 2, 4: 2},
        )
        sources = {3: ["x1", "x2", "x3"], 4: ["y1", "y2", "y3"]}
        duplicates = 0
        for seed in range(10):
            network, processes, _ = build_collection_network(
                graph, tree, sources, seed=seed, strict=False
            )
            # Rebuild the network with capture semantics.
            capture_net = RadioNetwork(
                graph, num_channels=1, capture_effect=True, capture_seed=seed
            )
            for process in processes.values():
                capture_net.attach(process)
            total = sum(len(v) for v in sources.values())
            root = processes[tree.root]
            capture_net.run(
                400_000,
                until=lambda n: len(root.delivered) >= total
                and all(p.is_done() for p in processes.values()),
            )
            assert len(root.delivered) == total  # dedupe keeps exactly-once
            duplicates += sum(
                p.lane.duplicates_seen for p in processes.values()
            )
        assert duplicates > 0  # Thm 3.1 premises really are load-bearing

    def test_base_model_unaffected_by_flag_default(self):
        graph = star(3)
        net = RadioNetwork(graph)
        assert not net.capture_effect


class TestCollisionDetectionModel:
    def test_on_collision_callback_fires(self):
        events = []

        class Detector(ScriptedProcess):
            def on_collision(self, slot, channel):
                events.append((self.node_id, slot, channel))

        graph = star(3)
        net = RadioNetwork(graph, collision_detection=True)
        net.attach(Detector(0))
        net.attach(Detector(1, {0: Transmission("a")}))
        net.attach(Detector(2, {0: Transmission("b")}))
        net.step()
        assert events == [(0, 0, 0)]

    def test_no_callback_without_flag(self):
        events = []

        class Detector(ScriptedProcess):
            def on_collision(self, slot, channel):
                events.append(self.node_id)

        graph = star(3)
        net = RadioNetwork(graph)
        net.attach(Detector(0))
        net.attach(Detector(1, {0: Transmission("a")}))
        net.attach(Detector(2, {0: Transmission("b")}))
        net.step()
        assert events == []


class TestTimeline:
    def test_records_one_row_per_phase_until_drained(self):
        graph = path(6)
        tree = reference_bfs_tree(graph, 0)
        timeline = record_collection_timeline(
            graph, tree, {5: ["a", "b"]}, seed=1
        )
        assert timeline.occupancy[0][5] == 2  # both start at level 5
        assert sum(timeline.occupancy[-1]) == 0  # drained
        totals = timeline.total_series()
        assert all(x >= y for x, y in zip(totals, totals[1:]))

    def test_pipeline_moves_at_most_one_level_per_phase(self):
        """The §4.1 granularity: between consecutive phases, occupancy can
        shift only between adjacent levels."""
        graph = path(8)
        tree = reference_bfs_tree(graph, 0)
        timeline = record_collection_timeline(
            graph, tree, {7: ["a", "b", "c"]}, seed=2
        )
        for before, after in zip(timeline.occupancy, timeline.occupancy[1:]):
            depth = len(before)
            for level in range(depth):
                # Everything at `level` after the phase must have been at
                # `level` or `level+1` before it.
                upstream = before[level] + (
                    before[level + 1] if level + 1 < depth else 0
                )
                assert after[level] <= upstream

    def test_render_ascii(self):
        graph = path(5)
        tree = reference_bfs_tree(graph, 0)
        timeline = record_collection_timeline(graph, tree, {4: ["a"]}, seed=0)
        art = render_timeline(timeline)
        assert "L 0" in art and "L 4" in art
        assert "|" in art

    def test_render_empty(self):
        from repro.analysis import Timeline

        assert "empty" in render_timeline(
            Timeline(occupancy=[], phase_length=1)
        )


class TestCongestion:
    def test_root_side_levels_carry_the_load(self):
        """Remark (5): with sources at the leaves of a branching tree, the
        per-station load grows toward the root (level 1 stations forward
        everything while being few)."""
        graph = balanced_tree(3, 3)
        tree = reference_bfs_tree(graph, 0)
        sources = {
            n: ["r"] for n in tree.nodes if tree.level[n] == tree.depth
        }
        profile = congestion_profile(graph, tree, sources, seed=4)
        per_station = {
            level: profile.per_level_transmissions[level]
            / len(tree.layer(level))
            for level in range(1, tree.depth + 1)
        }
        assert per_station[1] > per_station[tree.depth]
        assert profile.load_share(0) == 0.0  # the root only receives

    def test_profile_totals_match(self):
        graph = path(5)
        tree = reference_bfs_tree(graph, 0)
        profile = congestion_profile(graph, tree, {4: ["a"]}, seed=1)
        assert sum(profile.per_level_transmissions.values()) == sum(
            profile.per_node_transmissions.values()
        )


class TestCli:
    def test_info_and_demo(self, capsys):
        from repro.__main__ import main

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "32.27" in out
        assert main(["demo", "3"]) == 0
        out = capsys.readouterr().out
        assert "collection:" in out and "ranking:" in out

    def test_timeline_and_congestion_commands(self, capsys):
        from repro.__main__ import main

        assert main(["timeline", "2"]) == 0
        assert "level occupancy" in capsys.readouterr().out
        assert main(["congestion", "2"]) == 0
        assert "L1" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        from repro.__main__ import main

        assert main(["bogus"]) == 2

    def test_help(self, capsys):
        from repro.__main__ import main

        assert main(["--help"]) == 0
        assert "demo" in capsys.readouterr().out


class TestValidate:
    def test_all_quick_checks_pass(self, capsys):
        from repro.validate import run_validation

        results = run_validation(verbose=True)
        out = capsys.readouterr().out
        assert all(r.passed for r in results), out
        assert "claims verified" in out

    def test_cli_validate_exit_code(self, capsys):
        from repro.__main__ import main

        assert main(["validate"]) == 0

    def test_crashing_check_reported_not_raised(self):
        from repro.validate import CheckResult, run_validation
        import repro.validate as validate_module

        def boom():
            raise RuntimeError("kaput")

        original = validate_module.CHECKS
        validate_module.CHECKS = [boom]
        try:
            results = run_validation(verbose=False)
        finally:
            validate_module.CHECKS = original
        assert len(results) == 1
        assert not results[0].passed
        assert "kaput" in results[0].detail

    def test_map_command(self, capsys):
        from repro.__main__ import main

        assert main(["map", "4"]) == 0
        out = capsys.readouterr().out
        assert "unit-disk field" in out and "R" in out
