"""Tests for the token-DFS preparation protocol (§5.1)."""

import copy
import random

import pytest

from repro.core import apply_preparation, prepared_tree_infos, run_dfs_preparation
from repro.graphs import (
    balanced_tree,
    gnp_connected,
    grid,
    path,
    random_geometric,
    random_tree,
    reference_bfs_tree,
    star,
)


def prepare(graph, root=0):
    tree = reference_bfs_tree(graph, root)
    result = run_dfs_preparation(graph, tree)
    return tree, result


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path(7),
            lambda: star(8),
            lambda: grid(3, 3),
            lambda: balanced_tree(3, 2),
            lambda: random_geometric(18, 0.4, random.Random(2)),
            lambda: gnp_connected(15, 0.3, random.Random(4)),
            lambda: random_tree(20, random.Random(6)),
        ],
        ids=["path", "star", "grid", "tree", "rgg", "gnp", "rtree"],
    )
    def test_matches_centralized_assignment(self, graph_factory):
        """The distributed traversals reproduce the centralized preorder."""
        graph = graph_factory()
        tree, result = prepare(graph)
        reference = copy.deepcopy(tree)
        reference.assign_dfs_intervals()
        assert result.dfs_number == reference.dfs_number
        assert result.subtree_max == reference.subtree_max

    def test_numbers_are_a_permutation(self):
        graph = gnp_connected(22, 0.25, random.Random(9))
        _tree, result = prepare(graph)
        assert sorted(result.dfs_number.values()) == list(range(22))

    def test_bfs_children_learned_in_first_traversal(self):
        graph = random_geometric(16, 0.45, random.Random(3))
        tree, result = prepare(graph)
        for node in graph.nodes:
            assert result.bfs_children[node] == tree.children[node]

    def test_single_station(self):
        graph = path(1)
        tree, result = prepare(graph)
        assert result.dfs_number == {0: 0}
        assert result.subtree_max == {0: 0}
        assert result.slots == 0

    def test_two_stations(self):
        graph = path(2)
        _tree, result = prepare(graph)
        assert result.dfs_number == {0: 0, 1: 1}
        assert result.subtree_max == {0: 1, 1: 1}

    def test_nonzero_root(self):
        graph = grid(3, 3)
        tree, result = prepare(graph, root=4)
        reference = copy.deepcopy(tree)
        reference.assign_dfs_intervals()
        assert result.dfs_number == reference.dfs_number


class TestCost:
    @pytest.mark.parametrize("n", [2, 5, 10, 20])
    def test_linear_slot_count(self, n):
        """Two traversals of 2(n−1) token passes each, plus O(1)."""
        graph = path(n)
        _tree, result = prepare(graph)
        assert result.slots <= 4 * n + 4

    def test_conflict_free(self):
        """Token protocol never produces a collision (single transmitter)."""
        from repro.radio import EventTrace, RadioNetwork
        from repro.core.dfs import DfsPreparationProcess

        graph = gnp_connected(14, 0.3, random.Random(5))
        tree = reference_bfs_tree(graph, 0)
        trace = EventTrace()
        network = RadioNetwork(graph, trace=trace)
        processes = {}
        for node in graph.nodes:
            proc = DfsPreparationProcess(
                node, tree.parent[node], is_root=(node == 0)
            )
            proc.wire_neighbors(graph.neighbors(node))
            processes[node] = proc
            network.attach(proc)
        processes[0].start_first_traversal()
        network.run(10_000, until=lambda net: processes[0].done)
        assert len(trace.collisions) == 0


class TestDerivedInfos:
    def test_prepared_tree_infos_consistent(self):
        graph = random_geometric(15, 0.45, random.Random(8))
        tree = reference_bfs_tree(graph, 0)
        result = run_dfs_preparation(graph, tree)
        apply_preparation(tree, result)
        infos = prepared_tree_infos(graph, tree, result)
        for node, info in infos.items():
            assert info.dfs_number == tree.dfs_number[node]
            assert info.subtree_max == tree.subtree_max[node]
            for child, (low, high) in info.child_intervals.items():
                assert tree.dfs_number[child] == low
                assert tree.subtree_max[child] == high

    def test_apply_preparation_enables_routing(self):
        graph = grid(3, 3)
        tree = reference_bfs_tree(graph, 0)
        result = run_dfs_preparation(graph, tree)
        apply_preparation(tree, result)
        assert tree.has_dfs_intervals
        hop = tree.route_next_hop(0, tree.dfs_number[8])
        assert hop in tree.children[0]
