"""Property tests for the move-vector calculus (Lemmas 4.5–4.13)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.queueing import (
    completion_time,
    dominates,
    is_empty,
    move,
    move_sequence_witness,
    move_star,
    precedes,
    random_move_sequence,
    singleton,
    singleton_decomposition,
    suffix_sums,
)

partitions = st.lists(st.integers(0, 5), min_size=1, max_size=6).map(tuple)
moves = st.lists(st.integers(0, 3), min_size=1, max_size=6).map(tuple)


def paired(draw, strategy_a, strategy_b):
    a = draw(strategy_a)
    b = draw(strategy_b.filter(lambda x: True))
    return a, b


@st.composite
def partition_move_pairs(draw):
    dim = draw(st.integers(1, 6))
    a = tuple(draw(st.integers(0, 5)) for _ in range(dim))
    m = tuple(draw(st.integers(0, 3)) for _ in range(dim))
    return a, m


@st.composite
def comparable_partitions(draw):
    """(a, b) with a ⪯ b, built by applying random moves to b."""
    dim = draw(st.integers(1, 5))
    b = tuple(draw(st.integers(0, 4)) for _ in range(dim))
    a = b
    for _ in range(draw(st.integers(0, 6))):
        m = tuple(draw(st.integers(0, 2)) for _ in range(dim))
        a = move(a, m)
    return a, b


class TestMoveSemantics:
    def test_basic_shift(self):
        assert move((2, 3), (1, 1)) == (2, 2)

    def test_level_one_exits_system(self):
        assert move((4,), (2,)) == (2,)

    def test_clamped_by_occupancy(self):
        assert move((1, 0), (5, 5)) == (0, 0)

    def test_dimension_mismatch(self):
        with pytest.raises(ConfigurationError):
            move((1, 2), (1,))

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            move((-1,), (0,))

    @given(partition_move_pairs())
    @settings(max_examples=100)
    def test_nonnegativity_preserved(self, pair):
        a, m = pair
        assert all(x >= 0 for x in move(a, m))

    @given(partition_move_pairs())
    @settings(max_examples=100)
    def test_total_never_increases(self, pair):
        a, m = pair
        assert sum(move(a, m)) <= sum(a)

    @given(partition_move_pairs())
    @settings(max_examples=100)
    def test_move_result_precedes_input(self, pair):
        a, m = pair
        assert precedes(move(a, m), a)


class TestLemma45SingletonDecomposition:
    @given(partition_move_pairs())
    @settings(max_examples=150)
    def test_decomposition_equals_simultaneous_move(self, pair):
        """Lemma 4.5: Move(a, m) == Move*(a, E_m, Σ m_i)."""
        a, m = pair
        singletons = singleton_decomposition(m)
        assert len(singletons) == sum(m)
        assert move_star(a, singletons) == move(a, m)

    def test_singleton_shape(self):
        assert singleton(4, 2) == (0, 1, 0, 0)
        with pytest.raises(ConfigurationError):
            singleton(3, 0)
        with pytest.raises(ConfigurationError):
            singleton(3, 4)

    def test_order_matters_example(self):
        """The ascending order is essential: e_2 then e_1 would let one
        message ride two hops (see module docstring)."""
        a = (0, 1)
        simultaneous = move(a, (1, 1))  # (1, 0): message moved one level
        wrong_order = move(move(a, (0, 1)), (1, 0))  # (0, 0): rode two hops
        assert simultaneous == (1, 0)
        assert wrong_order == (0, 0)


class TestPartialOrder:
    @given(partitions)
    @settings(max_examples=60)
    def test_reflexive(self, a):
        assert precedes(a, a)

    @given(comparable_partitions())
    @settings(max_examples=100)
    def test_construction_yields_comparable(self, pair):
        a, b = pair
        assert precedes(a, b)

    @given(comparable_partitions())
    @settings(max_examples=100)
    def test_witness_exists_and_verifies(self, pair):
        """precedes(a, b) iff an explicit move schedule maps b to a."""
        a, b = pair
        witness = move_sequence_witness(b, a)
        assert witness is not None
        assert move_star(b, witness) == a

    def test_witness_absent_when_not_preceding(self):
        # (1,0) ⪯ (0,1): mass can move down but not up — so (0,1) is NOT
        # reachable from (1,0).
        assert move_sequence_witness((1, 0), (0, 1)) is None
        assert precedes((1, 0), (0, 1))
        assert not precedes((0, 1), (1, 0))
        # The reachable direction has a verifying witness.
        witness = move_sequence_witness((0, 1), (1, 0))
        assert witness is not None and move_star((0, 1), witness) == (1, 0)

    def test_suffix_sums(self):
        assert suffix_sums((1, 2, 3)) == (6, 5, 3)

    @given(comparable_partitions(), moves)
    @settings(max_examples=100)
    def test_lemma_47_monotone_under_same_move(self, pair, m):
        """Lemma 4.7: a ⪯ b implies Move(a, m) ⪯ Move(b, m)."""
        a, b = pair
        m = (m + (0,) * len(a))[: len(a)]
        assert precedes(move(a, m), move(b, m))


class TestDomination:
    def test_dominates_basic(self):
        assert dominates((2, 1), (1, 1))
        assert not dominates((0, 2), (1, 1))

    @given(partition_move_pairs(), st.integers(0, 2))
    @settings(max_examples=100)
    def test_lemma_412_dominating_moves_advance_more(self, pair, extra):
        """Lemma 4.12 (a = b case): if m dominates m' then
        Move(a, m) ⪯ Move(a, m')."""
        a, m_small = pair
        m_big = tuple(x + extra for x in m_small)
        assert dominates(m_big, m_small)
        assert precedes(move(a, m_big), move(a, m_small))


class TestCompletionTime:
    def test_empty_partition_completes_at_zero(self):
        assert completion_time((0, 0), iter([])) == 0

    def test_deterministic_drain(self):
        # One message at level 2 with full-move vectors: 2 steps.
        full = [(1, 1), (1, 1)]
        assert completion_time((0, 1), iter(full)) == 2

    def test_exhausted_sequence_raises(self):
        with pytest.raises(ConfigurationError):
            completion_time((0, 1), iter([(1, 1)]))

    @given(comparable_partitions(), st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_lemma_48_pathwise_monotonicity(self, pair, seed):
        """Lemma 4.8: a ⪯ b implies T(a, M) ≤ T(b, M) for the same M."""
        a, b = pair
        rng = random.Random(seed)
        # λ = µ so every position (reservoir included) keeps draining.
        sequence = random_move_sequence(
            len(a), mu=0.6, lam=0.6, rng=rng, length=2_000
        )
        t_b = completion_time(b, iter(sequence))
        t_a = completion_time(a, iter(sequence))
        assert t_a <= t_b

    @given(st.integers(1, 4), st.integers(0, 6), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_lemma_413_dominating_sequences_finish_sooner(
        self, dim, load, seed
    ):
        """Lemma 4.13: pointwise-dominating move sequences complete first."""
        rng = random.Random(seed)
        base = random_move_sequence(dim, mu=0.5, lam=0.5, rng=rng, length=800)
        dominating = [tuple(min(1, x + 1) for x in m) for m in base]
        a = (0,) * (dim - 1) + (load,)
        t_dominating = completion_time(a, iter(dominating + [(1,) * dim] * (load * dim + 4)))
        t_base = completion_time(
            a, iter(base + [(1,) * dim] * (load * dim + 4))
        )
        assert t_dominating <= t_base
