"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs import (
    Graph,
    grid,
    path,
    random_geometric,
    reference_bfs_tree,
    star,
)


@pytest.fixture
def path10() -> Graph:
    return path(10)


@pytest.fixture
def star8() -> Graph:
    return star(8)


@pytest.fixture
def grid4() -> Graph:
    return grid(4, 4)


@pytest.fixture
def rgg30() -> Graph:
    """A fixed connected random geometric graph (seeded)."""
    return random_geometric(30, radius=0.32, rng=random.Random(2024))


@pytest.fixture
def prepared_rgg30(rgg30):
    """(graph, tree-with-DFS-intervals) over the fixed RGG."""
    tree = reference_bfs_tree(rgg30, root=0)
    tree.assign_dfs_intervals()
    return rgg30, tree


def small_test_graphs():
    """A deterministic assortment of small graphs for parametrized tests."""
    rng = random.Random(7)
    return [
        ("path5", path(5)),
        ("star6", star(6)),
        ("grid3x3", grid(3, 3)),
        ("rgg16", random_geometric(16, radius=0.45, rng=rng)),
    ]
