"""Tests for the vector engine (repro.vector).

Three layers: the batched primitives (reception product, Decay) against
brute-force/scalar references; the batched collection protocol's exact
guarantees (conservation, ack parity, purity under batch composition);
and the equivalence harness itself — including the mandated negative
control, a deliberately broken Decay that must fail both the invariant
checks and the KS test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import ks_2sample
from repro.core import run_collection
from repro.errors import ConfigurationError, SimulationTimeout
from repro.graphs import (
    Graph,
    grid,
    layered_band,
    path,
    reference_bfs_tree,
    star,
)
from repro.vector import (
    ENGINES,
    BatchDecay,
    LockstepRadio,
    run_collection_batch,
    validate_engine,
)
from repro.vector.check import (
    BrokenOffByOneDecay,
    check_invariants,
    compare_cell,
    e2_cell,
    e3_cell,
    run_equivalence,
)


class TestEngineSelection:
    def test_engines(self):
        assert ENGINES == ("scalar", "vector")
        for engine in ENGINES:
            assert validate_engine(engine) == engine

    def test_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            validate_engine("quantum")


class TestLockstepRadio:
    def test_reception_matches_brute_force(self):
        graph = grid(4, 5)
        tree = reference_bfs_tree(graph, 0)
        radio = LockstepRadio(graph, tree, replications=8)
        rng = np.random.default_rng(3)
        for _ in range(25):
            tx = rng.random((8, radio.n)) < 0.3
            counts, senders, unique = radio.resolve(tx)
            for b in range(8):
                for vi, v in enumerate(radio.nodes):
                    transmitting_neighbors = [
                        u for u in graph.neighbors(v)
                        if tx[b, radio.index[u]]
                    ]
                    assert counts[b, vi] == len(transmitting_neighbors)
                    expected_unique = (
                        len(transmitting_neighbors) == 1 and not tx[b, vi]
                    )
                    assert unique[b, vi] == expected_unique
                    if expected_unique:
                        assert senders[b, vi] == radio.index[
                            transmitting_neighbors[0]
                        ]

    def test_transmitter_hears_nothing(self):
        graph = path(3)
        tree = reference_bfs_tree(graph, 0)
        radio = LockstepRadio(graph, tree, replications=1)
        tx = np.array([[False, True, True]])
        _counts, _senders, unique = radio.resolve(tx)
        # Station 1 transmits, so it cannot hear station 2 (and vice
        # versa); station 0 hears station 1 uniquely.
        assert not unique[0, 1] and not unique[0, 2]
        assert unique[0, 0]

    def test_rejects_zero_replications(self):
        graph = path(3)
        tree = reference_bfs_tree(graph, 0)
        with pytest.raises(ConfigurationError):
            LockstepRadio(graph, tree, replications=0)


class TestBatchDecay:
    def test_first_transmission_unconditional(self):
        decay = BatchDecay(budget=4, shape=(2, 3))
        decay.start(np.ones((2, 3), dtype=bool))
        # All coins kill immediately — but the first step still transmits.
        tx = decay.transmit(np.zeros((2, 3), dtype=np.float32))
        assert tx.all()
        # Everyone flipped 0 after transmitting: all sessions dead.
        tx = decay.transmit(np.ones((2, 3), dtype=np.float32))
        assert not tx.any()

    def test_budget_caps_transmissions(self):
        decay = BatchDecay(budget=3, shape=(1, 1))
        decay.start(np.ones((1, 1), dtype=bool))
        lucky = np.ones((1, 1), dtype=np.float32)  # coin 1: never dies
        transmissions = sum(
            int(decay.transmit(lucky)[0, 0]) for _ in range(10)
        )
        assert transmissions == 3

    def test_opportunity_mask_freezes_other_sessions(self):
        decay = BatchDecay(budget=2, shape=(1, 2))
        decay.start(np.ones((1, 2), dtype=bool))
        only_first = np.array([True, False])
        lucky = np.ones((1, 2), dtype=np.float32)
        tx = decay.transmit(lucky, opportunity=only_first)
        assert tx[0, 0] and not tx[0, 1]
        # Station 1's session did not advance: it still has both steps.
        assert decay.steps[0, 1] == 0 and decay.alive[0, 1]

    def test_kill_silences(self):
        decay = BatchDecay(budget=8, shape=(1, 2))
        decay.start(np.ones((1, 2), dtype=bool))
        decay.kill(np.array([0]), np.array([1]))
        tx = decay.transmit(np.ones((1, 2), dtype=np.float32))
        assert tx[0, 0] and not tx[0, 1]

    def test_rejects_bad_budget(self):
        with pytest.raises(ConfigurationError):
            BatchDecay(budget=0, shape=(1, 1))


class TestBatchCollection:
    def test_conservation_and_ack_parity(self):
        graph = layered_band(4, 3)
        tree = reference_bfs_tree(graph, 0)
        deepest = max(tree.nodes, key=lambda v: (tree.level[v], v))
        sources = {deepest: ["a", "b", "c"], 5: ["d"]}
        result = run_collection_batch(
            graph, tree, sources, seeds=[1, 2, 3, 4], trace=True
        )
        assert (result.completion_slots > 0).all()
        assert check_invariants(result) == []
        sim = result.simulation
        for record in sim.trace.data_slots():
            assert record.slot % 2 == 0
        for record in sim.trace.ack_slots():
            assert record.slot % 2 == 1

    def test_matches_scalar_on_deterministic_cell(self):
        # A single-source band pipeline drains deterministically: both
        # engines must land on exactly the same completion slot.
        graph = layered_band(5, 3)
        tree = reference_bfs_tree(graph, 0)
        deepest = max(tree.nodes, key=lambda v: (tree.level[v], v))
        sources = {deepest: [f"m{i}" for i in range(4)]}
        scalar = run_collection(graph, tree, sources, seed=9).slots
        batch = run_collection_batch(graph, tree, sources, seeds=[9, 10])
        assert list(batch.completion_slots) == [scalar, scalar]

    def test_purity_under_batch_composition(self):
        # Replication b's outcome is a function of its seed alone —
        # independent of which other seeds share the batch.  This is the
        # property that lets the runner cache vector results per task.
        cell = e2_cell()
        seeds = [101, 202, 303, 404]
        together = run_collection_batch(
            cell.graph, cell.tree, cell.sources, seeds
        ).completion_slots
        alone = [
            int(
                run_collection_batch(
                    cell.graph, cell.tree, cell.sources, [seed]
                ).completion_slots[0]
            )
            for seed in seeds
        ]
        assert list(together) == alone

    def test_root_sources_deliver_immediately(self):
        graph = star(4)
        tree = reference_bfs_tree(graph, 0)
        result = run_collection_batch(
            graph, tree, {0: ["at-root"]}, seeds=[5]
        )
        assert list(result.completion_slots) == [0]

    def test_empty_workload_completes_at_slot_zero(self):
        graph = path(4)
        tree = reference_bfs_tree(graph, 0)
        result = run_collection_batch(graph, tree, {}, seeds=[1, 2])
        assert list(result.completion_slots) == [0, 0]

    def test_timeout_raises(self):
        graph = path(6)
        tree = reference_bfs_tree(graph, 0)
        sim_sources = {5: ["m0", "m1"]}
        with pytest.raises(SimulationTimeout):
            run_collection_batch(
                graph, tree, sim_sources, seeds=[1], max_slots=4
            )

    def test_rejects_unknown_source(self):
        graph = path(3)
        tree = reference_bfs_tree(graph, 0)
        with pytest.raises(ConfigurationError):
            run_collection_batch(graph, tree, {99: ["x"]}, seeds=[1])

    def test_rejects_empty_seeds(self):
        graph = path(3)
        tree = reference_bfs_tree(graph, 0)
        with pytest.raises(ConfigurationError):
            run_collection_batch(graph, tree, {2: ["x"]}, seeds=[])


class TestKs2Sample:
    def test_identical_samples_do_not_reject(self):
        sample = [1.0, 2.0, 3.0, 4.0, 5.0] * 10
        result = ks_2sample(sample, list(sample))
        assert result.statistic == 0.0
        assert result.pvalue == 1.0
        assert not result.rejects(0.01)

    def test_disjoint_samples_reject(self):
        result = ks_2sample([0.0] * 30, [10.0] * 30)
        assert result.statistic == 1.0
        assert result.rejects(0.01)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ks_2sample([], [1.0])

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(4)
        a = list(rng.normal(0.0, 1.0, 80))
        b = list(rng.normal(0.4, 1.0, 60))
        ours = ks_2sample(a, b)
        ref = scipy_stats.ks_2samp(a, b, method="asymp")
        assert ours.statistic == pytest.approx(ref.statistic, abs=1e-12)
        # Different asymptotic approximations; agreement is loose.
        assert ours.pvalue == pytest.approx(ref.pvalue, abs=0.05)


class TestEquivalenceHarness:
    def test_harness_passes_on_real_engine(self):
        report = run_equivalence(seed=20260704, replications=24)
        assert report.passed, report.summary()
        for cell in report.cells:
            assert cell.invariant_failures == []
            assert not cell.ks.rejects(0.01)

    def test_broken_decay_fails_invariants_and_ks(self):
        # The mandated negative control: an off-by-one coin flip (flip
        # before the first transmission) must be caught BOTH ways.
        report = run_equivalence(
            seed=20260704,
            replications=24,
            decay_factory=BrokenOffByOneDecay,
        )
        assert not report.passed
        for cell in report.cells:
            assert cell.ks.rejects(0.01), (
                f"{cell.name}: KS failed to reject the broken engine"
            )
            assert any(
                "session-start" in failure
                for failure in cell.invariant_failures
            ), f"{cell.name}: session-start invariant failed to fire"

    def test_summary_mentions_each_cell(self):
        report = run_equivalence(seed=1, replications=8)
        text = report.summary()
        assert "E3/" in text and "E2/" in text
        assert "PASS" in text or "FAIL" in text

    def test_compare_cell_traces_by_default(self):
        cell = e3_cell()
        report = compare_cell(cell, seed=5, replications=6)
        assert len(report.scalar_slots) == 6
        assert len(report.vector_slots) == 6
        assert report.ks.n1 == 6


class TestSparseReception:
    """The CSR scatter kernel: bit-identical to the dense product."""

    def test_validate_reception(self):
        from repro.vector import RECEPTION_MODES, validate_reception

        assert RECEPTION_MODES == ("dense", "sparse", "auto")
        for mode in RECEPTION_MODES:
            assert validate_reception(mode) == mode
        with pytest.raises(ConfigurationError):
            validate_reception("csr")

    @pytest.mark.parametrize("cell", [e3_cell(), e2_cell()], ids=lambda c: c.name)
    def test_resolve_bitwise_equal_on_check_cells(self, cell):
        # Every vector-check cell, dense vs sparse, exact equality: the
        # acceptance criterion for the kernel swap.
        dense = LockstepRadio(cell.graph, cell.tree, 8, reception="dense")
        sparse = LockstepRadio(cell.graph, cell.tree, 8, reception="sparse")
        rng = np.random.default_rng(11)
        for density in (0.0, 0.05, 0.3, 1.0):
            tx = rng.random((8, dense.n)) < density
            d_counts, d_senders, d_unique = dense.resolve(tx)
            s_counts, s_senders, s_unique = sparse.resolve(tx)
            assert np.array_equal(d_counts, s_counts)
            assert np.array_equal(d_senders, s_senders)
            assert np.array_equal(d_unique, s_unique)
            assert d_counts.dtype == s_counts.dtype == np.float32

    @pytest.mark.parametrize("cell", [e3_cell(), e2_cell()], ids=lambda c: c.name)
    def test_full_trajectories_identical_across_kernels(self, cell):
        # Same seeds, only the kernel differs: whole runs must agree.
        seeds = [101, 102, 103, 104]
        results = {
            mode: run_collection_batch(
                cell.graph, cell.tree, cell.sources, seeds, reception=mode
            )
            for mode in ("dense", "sparse")
        }
        assert np.array_equal(
            results["dense"].completion_slots,
            results["sparse"].completion_slots,
        )
        assert (
            results["dense"].simulation.delivered_ids()
            == results["sparse"].simulation.delivered_ids()
        )

    def test_auto_heuristic(self):
        from repro.vector.engine import SPARSE_MAX_DENSITY, SPARSE_MIN_NODES

        # Small and dense -> dense kernel.
        band = e3_cell()
        small = LockstepRadio(band.graph, band.tree, 1, reception="auto")
        assert small.requested_reception == "auto"
        assert small.reception == "dense"
        # Sparse topology (path density well under the threshold) -> sparse.
        chain = path(64)
        chain_tree = reference_bfs_tree(chain, 0)
        assert (2 * chain.num_edges) / 64**2 <= SPARSE_MAX_DENSITY
        assert LockstepRadio(chain, chain_tree, 1).reception == "sparse"
        # Node-count override: big graphs go sparse regardless of density.
        assert SPARSE_MIN_NODES == 1024

    def test_sparse_radio_builds_dense_adjacency_lazily(self):
        cell = e2_cell()
        radio = LockstepRadio(cell.graph, cell.tree, 2, reception="sparse")
        assert radio._adjacency is None
        adjacency = radio.adjacency  # trace/invariant path still works
        assert adjacency[radio.index[0], radio.index[1]]
        assert np.array_equal(adjacency, adjacency.T)


class TestBackends:
    """The pluggable kernel layer: selection, fallback, identity."""

    def test_validate_backend(self):
        from repro.vector import BACKENDS, validate_backend

        assert BACKENDS == ("numpy", "numba", "cupy", "auto")
        for name in BACKENDS:
            assert validate_backend(name) == name
        with pytest.raises(ConfigurationError):
            validate_backend("fortran")

    def test_available_backends_always_has_numpy(self):
        from repro.vector import available_backends

        names = available_backends()
        assert names[0] == "numpy"
        assert "cupy" not in names  # stub only: never auto-selected

    def test_cupy_backend_is_an_explicit_stub(self):
        from repro.vector import resolve_backend

        with pytest.raises(ConfigurationError) as err:
            resolve_backend("cupy")
        assert "cupy" in str(err.value)

    def test_numba_request_falls_back_silently(self):
        # Without numba installed the request resolves to the numpy
        # kernels (bit-identical, so the fallback is safe); with numba
        # installed it resolves to the JIT set.  Either way the
        # *requested* name is preserved for cache identity.
        from repro.vector import numba_available, resolve_backend

        backend = resolve_backend("numba")
        assert backend.requested == "numba"
        expected = "numba" if numba_available() else "numpy"
        assert backend.name == expected

    def test_radio_resolve_identical_across_backends(self):
        from repro.vector import available_backends

        cell = e3_cell()
        rng = np.random.default_rng(5)
        radios = {
            name: LockstepRadio(
                cell.graph, cell.tree, 6, reception="sparse", backend=name
            )
            for name in available_backends()
        }
        for density in (0.0, 0.1, 0.5):
            tx = rng.random((6, radios["numpy"].n)) < density
            reference = radios["numpy"].resolve(tx)
            for name, radio in radios.items():
                counts, senders, unique = radio.resolve(tx)
                assert np.array_equal(counts, reference[0]), name
                assert np.array_equal(senders, reference[1]), name
                assert np.array_equal(unique, reference[2]), name


class TestSparseEdgeCases:
    """Degenerate slot shapes every kernel pair must agree on exactly."""

    def _resolve_all(self, graph, tx):
        from repro.vector import available_backends

        tree = reference_bfs_tree(graph, 0)
        B = tx.shape[0]
        outputs = {
            "dense": LockstepRadio(
                graph, tree, B, reception="dense"
            ).resolve(tx)
        }
        for name in available_backends():
            outputs[f"sparse/{name}"] = LockstepRadio(
                graph, tree, B, reception="sparse", backend=name
            ).resolve(tx)
        reference = outputs["dense"]
        for label, (counts, senders, unique) in outputs.items():
            assert np.array_equal(counts, reference[0]), label
            assert np.array_equal(senders, reference[1]), label
            assert np.array_equal(unique, reference[2]), label
        return reference

    def test_zero_transmitter_slot(self):
        graph = grid(4, 4)
        tx = np.zeros((3, 16), dtype=bool)
        counts, _senders, unique = self._resolve_all(graph, tx)
        assert not counts.any()
        assert not unique.any()

    def test_isolated_stations_hear_nothing(self):
        # Leaves of a star are mutually isolated: when only leaves
        # transmit, the silent hub hears a collision and every leaf
        # hears nothing at all.
        graph = star(9)
        tree = reference_bfs_tree(graph, 0)
        radio = LockstepRadio(graph, tree, 1, reception="sparse")
        tx = np.ones((1, 9), dtype=bool)
        tx[0, radio.index[0]] = False  # hub (root) stays silent
        counts, _senders, unique = self._resolve_all(graph, tx)
        hub = radio.index[0]
        assert counts[0, hub] == 8
        assert not unique[0, hub]
        leaves = [i for i in range(9) if i != hub]
        assert not counts[0, leaves].any()

    def test_max_degree_hub_broadcast(self):
        # The hub alone transmits: all 63 leaves hear it uniquely — the
        # widest single-sender scatter a star can produce.
        graph = star(64)
        tree = reference_bfs_tree(graph, 0)
        radio = LockstepRadio(graph, tree, 2, reception="sparse")
        tx = np.zeros((2, 64), dtype=bool)
        tx[:, radio.index[0]] = True
        counts, senders, unique = self._resolve_all(graph, tx)
        hub = radio.index[0]
        leaves = [i for i in range(64) if i != hub]
        assert unique[:, leaves].all()
        assert (senders[:, leaves] == hub).all()
        assert counts[:, hub].sum() == 0  # nobody talks back

    def test_edge_case_trajectories_span_backends(self):
        # Whole protocol runs on a star (max-degree hub) and a path
        # (every station near-isolated): dense vs sparse x backends,
        # bit-identical completion and delivery.
        from repro.vector import available_backends

        for graph in (star(12), path(12)):
            tree = reference_bfs_tree(graph, 0)
            deepest = max(tree.nodes, key=lambda v: (tree.level[v], v))
            sources = {deepest: ["a", "b", "c"]}
            seeds = [7, 8, 9]
            runs = {}
            runs["dense"] = run_collection_batch(
                graph, tree, sources, seeds, reception="dense"
            )
            for name in available_backends():
                runs[f"sparse/{name}"] = run_collection_batch(
                    graph, tree, sources, seeds,
                    reception="sparse", backend=name,
                )
            reference = runs["dense"]
            for label, batch in runs.items():
                assert np.array_equal(
                    batch.completion_slots, reference.completion_slots
                ), label
                assert (
                    batch.simulation.delivered_ids()
                    == reference.simulation.delivered_ids()
                ), label


class TestActiveSetMask:
    """The idle-aware lockstep loop: awake pairs only, same physics."""

    def test_validate_mask(self):
        from repro.vector import MASK_MODES, validate_mask

        assert MASK_MODES == ("on", "off", "auto")
        for mode in MASK_MODES:
            assert validate_mask(mode) == mode
        with pytest.raises(ConfigurationError):
            validate_mask("maybe")

    def test_auto_threshold(self):
        from repro.vector.collection import MASK_MIN_NODES, BatchCollection

        cell = e3_cell()
        assert MASK_MIN_NODES == 1024
        small = BatchCollection(
            cell.graph, cell.tree, cell.sources, [1, 2], mask="auto"
        )
        assert not small.masked  # e3 band is far below the threshold
        forced = BatchCollection(
            cell.graph, cell.tree, cell.sources, [1, 2], mask="on"
        )
        assert forced.masked

    @pytest.mark.parametrize("cell", [e3_cell(), e2_cell()], ids=lambda c: c.name)
    def test_masked_run_keeps_exact_invariants(self, cell):
        seeds = [31, 32, 33, 34]
        batch = run_collection_batch(
            cell.graph, cell.tree, cell.sources, seeds,
            mask="on", trace=True,
        )
        assert check_invariants(batch) == []
        assert (batch.completion_slots >= 0).all()
        expected = list(range(batch.simulation.total_messages))
        for b in range(len(seeds)):
            assert sorted(batch.simulation.delivered_ids()[b]) == expected

    def test_masked_backends_bit_identical(self):
        from repro.vector import available_backends

        cell = e3_cell()
        seeds = [41, 42, 43]
        runs = [
            run_collection_batch(
                cell.graph, cell.tree, cell.sources, seeds,
                mask="on", backend=name,
            )
            for name in available_backends()
        ]
        for other in runs[1:]:
            assert np.array_equal(
                runs[0].completion_slots, other.completion_slots
            )

    def test_masked_purity_under_batch_composition(self):
        # The sharding contract: each replication's coin stream is a
        # pure function of its own seed, so any partition of the seed
        # list produces bit-identical trajectories.
        cell = e3_cell()
        seeds = [51, 52, 53, 54]
        whole = run_collection_batch(
            cell.graph, cell.tree, cell.sources, seeds, mask="on"
        )
        parts = [
            run_collection_batch(
                cell.graph, cell.tree, cell.sources, chunk, mask="on"
            )
            for chunk in (seeds[:1], seeds[1:3], seeds[3:])
        ]
        stitched = np.concatenate([p.completion_slots for p in parts])
        assert np.array_equal(whole.completion_slots, stitched)

    def test_occupancy_reported(self):
        cell = e3_cell()
        sim = run_collection_batch(
            cell.graph, cell.tree, cell.sources, [61, 62], mask="on"
        ).simulation
        assert 0.0 < sim.awake_occupancy <= 1.0
        assert sim.mask_stats["data_slots"] > 0

    def test_broken_decay_caught_under_mask(self):
        # The negative control must still have teeth in masked mode.
        report = run_equivalence(
            replications=24,
            decay_factory=BrokenOffByOneDecay,
            cells=[e3_cell()],
            backends=["numpy"],
            masks=("on",),
        )
        assert not report.passed
