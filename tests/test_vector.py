"""Tests for the vector engine (repro.vector).

Three layers: the batched primitives (reception product, Decay) against
brute-force/scalar references; the batched collection protocol's exact
guarantees (conservation, ack parity, purity under batch composition);
and the equivalence harness itself — including the mandated negative
control, a deliberately broken Decay that must fail both the invariant
checks and the KS test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import ks_2sample
from repro.core import run_collection
from repro.errors import ConfigurationError, SimulationTimeout
from repro.graphs import (
    Graph,
    grid,
    layered_band,
    path,
    reference_bfs_tree,
    star,
)
from repro.vector import (
    ENGINES,
    BatchDecay,
    LockstepRadio,
    run_collection_batch,
    validate_engine,
)
from repro.vector.check import (
    BrokenOffByOneDecay,
    check_invariants,
    compare_cell,
    e2_cell,
    e3_cell,
    run_equivalence,
)


class TestEngineSelection:
    def test_engines(self):
        assert ENGINES == ("scalar", "vector")
        for engine in ENGINES:
            assert validate_engine(engine) == engine

    def test_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            validate_engine("quantum")


class TestLockstepRadio:
    def test_reception_matches_brute_force(self):
        graph = grid(4, 5)
        tree = reference_bfs_tree(graph, 0)
        radio = LockstepRadio(graph, tree, replications=8)
        rng = np.random.default_rng(3)
        for _ in range(25):
            tx = rng.random((8, radio.n)) < 0.3
            counts, senders, unique = radio.resolve(tx)
            for b in range(8):
                for vi, v in enumerate(radio.nodes):
                    transmitting_neighbors = [
                        u for u in graph.neighbors(v)
                        if tx[b, radio.index[u]]
                    ]
                    assert counts[b, vi] == len(transmitting_neighbors)
                    expected_unique = (
                        len(transmitting_neighbors) == 1 and not tx[b, vi]
                    )
                    assert unique[b, vi] == expected_unique
                    if expected_unique:
                        assert senders[b, vi] == radio.index[
                            transmitting_neighbors[0]
                        ]

    def test_transmitter_hears_nothing(self):
        graph = path(3)
        tree = reference_bfs_tree(graph, 0)
        radio = LockstepRadio(graph, tree, replications=1)
        tx = np.array([[False, True, True]])
        _counts, _senders, unique = radio.resolve(tx)
        # Station 1 transmits, so it cannot hear station 2 (and vice
        # versa); station 0 hears station 1 uniquely.
        assert not unique[0, 1] and not unique[0, 2]
        assert unique[0, 0]

    def test_rejects_zero_replications(self):
        graph = path(3)
        tree = reference_bfs_tree(graph, 0)
        with pytest.raises(ConfigurationError):
            LockstepRadio(graph, tree, replications=0)


class TestBatchDecay:
    def test_first_transmission_unconditional(self):
        decay = BatchDecay(budget=4, shape=(2, 3))
        decay.start(np.ones((2, 3), dtype=bool))
        # All coins kill immediately — but the first step still transmits.
        tx = decay.transmit(np.zeros((2, 3), dtype=np.float32))
        assert tx.all()
        # Everyone flipped 0 after transmitting: all sessions dead.
        tx = decay.transmit(np.ones((2, 3), dtype=np.float32))
        assert not tx.any()

    def test_budget_caps_transmissions(self):
        decay = BatchDecay(budget=3, shape=(1, 1))
        decay.start(np.ones((1, 1), dtype=bool))
        lucky = np.ones((1, 1), dtype=np.float32)  # coin 1: never dies
        transmissions = sum(
            int(decay.transmit(lucky)[0, 0]) for _ in range(10)
        )
        assert transmissions == 3

    def test_opportunity_mask_freezes_other_sessions(self):
        decay = BatchDecay(budget=2, shape=(1, 2))
        decay.start(np.ones((1, 2), dtype=bool))
        only_first = np.array([True, False])
        lucky = np.ones((1, 2), dtype=np.float32)
        tx = decay.transmit(lucky, opportunity=only_first)
        assert tx[0, 0] and not tx[0, 1]
        # Station 1's session did not advance: it still has both steps.
        assert decay.steps[0, 1] == 0 and decay.alive[0, 1]

    def test_kill_silences(self):
        decay = BatchDecay(budget=8, shape=(1, 2))
        decay.start(np.ones((1, 2), dtype=bool))
        decay.kill(np.array([0]), np.array([1]))
        tx = decay.transmit(np.ones((1, 2), dtype=np.float32))
        assert tx[0, 0] and not tx[0, 1]

    def test_rejects_bad_budget(self):
        with pytest.raises(ConfigurationError):
            BatchDecay(budget=0, shape=(1, 1))


class TestBatchCollection:
    def test_conservation_and_ack_parity(self):
        graph = layered_band(4, 3)
        tree = reference_bfs_tree(graph, 0)
        deepest = max(tree.nodes, key=lambda v: (tree.level[v], v))
        sources = {deepest: ["a", "b", "c"], 5: ["d"]}
        result = run_collection_batch(
            graph, tree, sources, seeds=[1, 2, 3, 4], trace=True
        )
        assert (result.completion_slots > 0).all()
        assert check_invariants(result) == []
        sim = result.simulation
        for record in sim.trace.data_slots():
            assert record.slot % 2 == 0
        for record in sim.trace.ack_slots():
            assert record.slot % 2 == 1

    def test_matches_scalar_on_deterministic_cell(self):
        # A single-source band pipeline drains deterministically: both
        # engines must land on exactly the same completion slot.
        graph = layered_band(5, 3)
        tree = reference_bfs_tree(graph, 0)
        deepest = max(tree.nodes, key=lambda v: (tree.level[v], v))
        sources = {deepest: [f"m{i}" for i in range(4)]}
        scalar = run_collection(graph, tree, sources, seed=9).slots
        batch = run_collection_batch(graph, tree, sources, seeds=[9, 10])
        assert list(batch.completion_slots) == [scalar, scalar]

    def test_purity_under_batch_composition(self):
        # Replication b's outcome is a function of its seed alone —
        # independent of which other seeds share the batch.  This is the
        # property that lets the runner cache vector results per task.
        cell = e2_cell()
        seeds = [101, 202, 303, 404]
        together = run_collection_batch(
            cell.graph, cell.tree, cell.sources, seeds
        ).completion_slots
        alone = [
            int(
                run_collection_batch(
                    cell.graph, cell.tree, cell.sources, [seed]
                ).completion_slots[0]
            )
            for seed in seeds
        ]
        assert list(together) == alone

    def test_root_sources_deliver_immediately(self):
        graph = star(4)
        tree = reference_bfs_tree(graph, 0)
        result = run_collection_batch(
            graph, tree, {0: ["at-root"]}, seeds=[5]
        )
        assert list(result.completion_slots) == [0]

    def test_empty_workload_completes_at_slot_zero(self):
        graph = path(4)
        tree = reference_bfs_tree(graph, 0)
        result = run_collection_batch(graph, tree, {}, seeds=[1, 2])
        assert list(result.completion_slots) == [0, 0]

    def test_timeout_raises(self):
        graph = path(6)
        tree = reference_bfs_tree(graph, 0)
        sim_sources = {5: ["m0", "m1"]}
        with pytest.raises(SimulationTimeout):
            run_collection_batch(
                graph, tree, sim_sources, seeds=[1], max_slots=4
            )

    def test_rejects_unknown_source(self):
        graph = path(3)
        tree = reference_bfs_tree(graph, 0)
        with pytest.raises(ConfigurationError):
            run_collection_batch(graph, tree, {99: ["x"]}, seeds=[1])

    def test_rejects_empty_seeds(self):
        graph = path(3)
        tree = reference_bfs_tree(graph, 0)
        with pytest.raises(ConfigurationError):
            run_collection_batch(graph, tree, {2: ["x"]}, seeds=[])


class TestKs2Sample:
    def test_identical_samples_do_not_reject(self):
        sample = [1.0, 2.0, 3.0, 4.0, 5.0] * 10
        result = ks_2sample(sample, list(sample))
        assert result.statistic == 0.0
        assert result.pvalue == 1.0
        assert not result.rejects(0.01)

    def test_disjoint_samples_reject(self):
        result = ks_2sample([0.0] * 30, [10.0] * 30)
        assert result.statistic == 1.0
        assert result.rejects(0.01)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ks_2sample([], [1.0])

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(4)
        a = list(rng.normal(0.0, 1.0, 80))
        b = list(rng.normal(0.4, 1.0, 60))
        ours = ks_2sample(a, b)
        ref = scipy_stats.ks_2samp(a, b, method="asymp")
        assert ours.statistic == pytest.approx(ref.statistic, abs=1e-12)
        # Different asymptotic approximations; agreement is loose.
        assert ours.pvalue == pytest.approx(ref.pvalue, abs=0.05)


class TestEquivalenceHarness:
    def test_harness_passes_on_real_engine(self):
        report = run_equivalence(seed=20260704, replications=24)
        assert report.passed, report.summary()
        for cell in report.cells:
            assert cell.invariant_failures == []
            assert not cell.ks.rejects(0.01)

    def test_broken_decay_fails_invariants_and_ks(self):
        # The mandated negative control: an off-by-one coin flip (flip
        # before the first transmission) must be caught BOTH ways.
        report = run_equivalence(
            seed=20260704,
            replications=24,
            decay_factory=BrokenOffByOneDecay,
        )
        assert not report.passed
        for cell in report.cells:
            assert cell.ks.rejects(0.01), (
                f"{cell.name}: KS failed to reject the broken engine"
            )
            assert any(
                "session-start" in failure
                for failure in cell.invariant_failures
            ), f"{cell.name}: session-start invariant failed to fire"

    def test_summary_mentions_each_cell(self):
        report = run_equivalence(seed=1, replications=8)
        text = report.summary()
        assert "E3/" in text and "E2/" in text
        assert "PASS" in text or "FAIL" in text

    def test_compare_cell_traces_by_default(self):
        cell = e3_cell()
        report = compare_cell(cell, seed=5, replications=6)
        assert len(report.scalar_slots) == 6
        assert len(report.vector_slots) == 6
        assert report.ks.n1 == 6


class TestSparseReception:
    """The CSR scatter kernel: bit-identical to the dense product."""

    def test_validate_reception(self):
        from repro.vector import RECEPTION_MODES, validate_reception

        assert RECEPTION_MODES == ("dense", "sparse", "auto")
        for mode in RECEPTION_MODES:
            assert validate_reception(mode) == mode
        with pytest.raises(ConfigurationError):
            validate_reception("csr")

    @pytest.mark.parametrize("cell", [e3_cell(), e2_cell()], ids=lambda c: c.name)
    def test_resolve_bitwise_equal_on_check_cells(self, cell):
        # Every vector-check cell, dense vs sparse, exact equality: the
        # acceptance criterion for the kernel swap.
        dense = LockstepRadio(cell.graph, cell.tree, 8, reception="dense")
        sparse = LockstepRadio(cell.graph, cell.tree, 8, reception="sparse")
        rng = np.random.default_rng(11)
        for density in (0.0, 0.05, 0.3, 1.0):
            tx = rng.random((8, dense.n)) < density
            d_counts, d_senders, d_unique = dense.resolve(tx)
            s_counts, s_senders, s_unique = sparse.resolve(tx)
            assert np.array_equal(d_counts, s_counts)
            assert np.array_equal(d_senders, s_senders)
            assert np.array_equal(d_unique, s_unique)
            assert d_counts.dtype == s_counts.dtype == np.float32

    @pytest.mark.parametrize("cell", [e3_cell(), e2_cell()], ids=lambda c: c.name)
    def test_full_trajectories_identical_across_kernels(self, cell):
        # Same seeds, only the kernel differs: whole runs must agree.
        seeds = [101, 102, 103, 104]
        results = {
            mode: run_collection_batch(
                cell.graph, cell.tree, cell.sources, seeds, reception=mode
            )
            for mode in ("dense", "sparse")
        }
        assert np.array_equal(
            results["dense"].completion_slots,
            results["sparse"].completion_slots,
        )
        assert (
            results["dense"].simulation.delivered_ids()
            == results["sparse"].simulation.delivered_ids()
        )

    def test_auto_heuristic(self):
        from repro.vector.engine import SPARSE_MAX_DENSITY, SPARSE_MIN_NODES

        # Small and dense -> dense kernel.
        band = e3_cell()
        small = LockstepRadio(band.graph, band.tree, 1, reception="auto")
        assert small.requested_reception == "auto"
        assert small.reception == "dense"
        # Sparse topology (path density well under the threshold) -> sparse.
        chain = path(64)
        chain_tree = reference_bfs_tree(chain, 0)
        assert (2 * chain.num_edges) / 64**2 <= SPARSE_MAX_DENSITY
        assert LockstepRadio(chain, chain_tree, 1).reception == "sparse"
        # Node-count override: big graphs go sparse regardless of density.
        assert SPARSE_MIN_NODES == 1024

    def test_sparse_radio_builds_dense_adjacency_lazily(self):
        cell = e2_cell()
        radio = LockstepRadio(cell.graph, cell.tree, 2, reception="sparse")
        assert radio._adjacency is None
        adjacency = radio.adjacency  # trace/invariant path still works
        assert adjacency[radio.index[0], radio.index[1]]
        assert np.array_equal(adjacency, adjacency.T)
