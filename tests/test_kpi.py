"""Tests for the KPI post-pass (repro.kpi) and the shared sketches.

KPIs must pool correctly (ratios from summed counters, not means of
ratios), agree between the in-memory report path and the telemetry-file
path, and land in a flat JSON file whose top-level scalars the
regression gate can consume.  The sketch move to repro.analysis must
keep the old repro.service.streaming imports working.
"""

from __future__ import annotations

import json
import math
import textwrap

import pytest

from repro.errors import ConfigurationError
from repro.kpi import (
    compute_kpis,
    kpi_filename,
    kpis_from_report,
    kpis_from_run_dir,
    write_kpi_report,
)


def record(case, metrics, *, cached=False, wall=0.01, replicate=0):
    return {
        "spec": {
            "exp_id": "scenario:t:abc",
            "case": case,
            "replicate": replicate,
            "seed": 1,
        },
        "metrics": metrics,
        "wall_time": wall,
        "cached": cached,
        "key": f"k{replicate}",
    }


class TestComputeKpis:
    def test_ratios_pool_from_summed_counters(self):
        # 10/10 and 0/10 must pool to 0.5, not mean-of-ratios artifacts.
        records = [
            record({"a": 1}, {"submitted": 10, "delivered": 10}),
            record({"a": 2}, {"submitted": 10, "delivered": 0}, replicate=1),
        ]
        kpis = compute_kpis(records, scenario="t")
        assert kpis["delivery_ratio"] == pytest.approx(0.5)
        assert kpis["submitted"] == 20
        assert kpis["tasks"] == 2
        assert kpis["cases"] == 2

    def test_collision_rate_pools(self):
        records = [
            record({}, {"transmissions": 100, "collisions": 10}),
            record({}, {"transmissions": 300, "collisions": 10},
                   replicate=1),
        ]
        kpis = compute_kpis(records, scenario="t")
        assert kpis["collision_rate"] == pytest.approx(20 / 400)

    def test_utilization_is_slot_weighted(self):
        records = [
            record({}, {"utilization": 1.0, "slots": 100}),
            record({}, {"utilization": 0.0, "slots": 300}, replicate=1),
        ]
        kpis = compute_kpis(records, scenario="t")
        assert kpis["utilization"] == pytest.approx(0.25)

    def test_latency_percentiles_weight_by_measured(self):
        records = [
            record({}, {"sojourn_p50_phases": 2.0, "measured": 30}),
            record({}, {"sojourn_p50_phases": 6.0, "measured": 10},
                   replicate=1),
        ]
        kpis = compute_kpis(records, scenario="t")
        assert kpis["latency_p50_phases"] == pytest.approx(3.0)

    def test_nan_metrics_are_skipped(self):
        records = [
            record({}, {"sojourn_p50_phases": float("nan"),
                        "submitted": 2, "delivered": 2}),
            record({}, {"sojourn_p50_phases": 4.0, "measured": 5,
                        "submitted": 3, "delivered": 3}, replicate=1),
        ]
        kpis = compute_kpis(records, scenario="t")
        assert kpis["latency_p50_phases"] == pytest.approx(4.0)
        assert not any(
            isinstance(v, float) and math.isnan(v)
            for v in kpis.values() if isinstance(v, (int, float))
        )

    def test_empty_records_raise(self):
        with pytest.raises(ConfigurationError):
            compute_kpis([])

    def test_per_case_breakdown(self):
        records = [
            record({"rate": 0.1}, {"delivered": 4}),
            record({"rate": 0.1}, {"delivered": 6}, replicate=1),
            record({"rate": 0.2}, {"delivered": 1}, replicate=0),
        ]
        kpis = compute_kpis(records, scenario="t")
        assert kpis["per_case"]["rate=0.1"]["delivered"] == pytest.approx(5.0)
        assert kpis["per_case"]["rate=0.2"]["delivered"] == pytest.approx(1.0)


class TestEndToEnd:
    @pytest.fixture()
    def compiled(self, tmp_path):
        from repro.scenario import compile_scenario, parse_scenario

        spec = tmp_path / "s.toml"
        spec.write_text(textwrap.dedent("""
            [scenario]
            name = "kpi-e2e"

            [topology]
            name = "path-6"

            [arrivals]
            kind = "bernoulli"
            rate = 0.2
            sources = "all"

            [protocol]
            kind = "collection"

            [run]
            seed = 7
            replications = 2
            horizon_phases = 12
        """))
        return compile_scenario(parse_scenario(spec))

    def test_report_and_telemetry_paths_agree(self, tmp_path, compiled):
        from repro.scenario import run_scenario

        run_dir = tmp_path / "run"
        report = run_scenario(compiled, workers=0, telemetry=run_dir)
        from_report = kpis_from_report(report, scenario="kpi-e2e")
        from_disk = kpis_from_run_dir(run_dir, scenario="kpi-e2e")
        wall_keys = {"wall_time_total", "wall_time_mean", "wall_time_p90"}
        trimmed = lambda k: {x: v for x, v in k.items() if x not in wall_keys}
        assert trimmed(from_report) == trimmed(from_disk)
        assert from_report["delivery_ratio"] > 0.0
        assert "latency_p50_phases" in from_report
        assert "latency_p99_phases" in from_report

    def test_written_file_shape(self, tmp_path, compiled):
        from repro.scenario import run_scenario

        report = run_scenario(compiled, workers=0)
        kpis = kpis_from_report(report, scenario="kpi-e2e")
        path = write_kpi_report(kpis, tmp_path)
        assert path.name == "KPI_kpi-e2e.json"
        loaded = json.loads(path.read_text())
        # The regression gate reads top-level scalar keys.
        assert isinstance(loaded["delivery_ratio"], float)
        assert isinstance(loaded["tasks"], int)


class TestWriter:
    def test_filename_sanitized(self):
        assert kpi_filename("flash crowd/v2") == "KPI_flash_crowd_v2.json"

    def test_explicit_file_target(self, tmp_path):
        path = write_kpi_report({"scenario": "x", "a": 1},
                                tmp_path / "out.json")
        assert path == tmp_path / "out.json"
        assert json.loads(path.read_text())["a"] == 1


class TestSketchesMove:
    def test_analysis_exports(self):
        from repro.analysis import P2Quantile, RateWindow, Welford

        w = Welford()
        for x in (1.0, 2.0, 3.0):
            w.add(x)
        assert w.mean == pytest.approx(2.0)
        q = P2Quantile(0.5)
        for x in range(1, 12):
            q.add(float(x))
        assert q.value == pytest.approx(6.0, abs=1.0)
        assert RateWindow is not None

    def test_service_streaming_shim_still_works(self):
        from repro.service.streaming import P2Quantile, RateWindow, Welford
        from repro.analysis import sketches

        assert Welford is sketches.Welford
        assert P2Quantile is sketches.P2Quantile
        assert RateWindow is sketches.RateWindow
