"""Tests for the collection protocol (§4)."""

import random

import pytest

from repro.core import (
    LAMBDA_STAR,
    MU,
    expected_collection_phases,
    expected_collection_slots,
    run_collection,
    theorem_44_constant,
)
from repro.core.collection import build_collection_network
from repro.errors import ConfigurationError
from repro.graphs import (
    balanced_tree,
    caterpillar,
    grid,
    layered_band,
    path,
    random_geometric,
    reference_bfs_tree,
    star,
)


def collect(graph, sources, seed=0, **kwargs):
    tree = reference_bfs_tree(graph, 0)
    return run_collection(graph, tree, sources, seed, **kwargs)


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path(6),
            lambda: star(7),
            lambda: grid(3, 3),
            lambda: balanced_tree(2, 3),
            lambda: caterpillar(5, 2),
            lambda: layered_band(3, 3),
            lambda: random_geometric(20, 0.4, random.Random(5)),
        ],
        ids=["path", "star", "grid", "tree", "caterpillar", "band", "rgg"],
    )
    def test_all_messages_reach_root(self, graph_factory):
        graph = graph_factory()
        sources = {n: [f"p{n}a", f"p{n}b"] for n in list(graph.nodes)[1:]}
        result = collect(graph, sources, seed=1)
        expected = sorted(p for v in sources.values() for p in v)
        assert sorted(m.payload for m in result.delivered) == expected

    def test_origin_recorded(self):
        result = collect(path(5), {4: ["hello"]}, seed=0)
        assert result.delivered[0].origin == 4

    def test_root_submission_is_immediate(self):
        graph = path(4)
        tree = reference_bfs_tree(graph, 0)
        result = run_collection(graph, tree, {0: ["self"]}, seed=0)
        assert result.slots == 0
        assert result.delivered[0].payload == "self"

    def test_empty_workload(self):
        result = collect(path(4), {}, seed=0)
        assert result.slots == 0
        assert result.delivered == []

    def test_single_node_network(self):
        graph = path(1)
        tree = reference_bfs_tree(graph, 0)
        result = run_collection(graph, tree, {0: ["x"]}, seed=0)
        assert [m.payload for m in result.delivered] == ["x"]

    def test_unknown_source_rejected(self):
        with pytest.raises(ConfigurationError):
            collect(path(3), {99: ["x"]})

    def test_per_source_fifo_order(self):
        """Messages from one source arrive in submission order."""
        result = collect(path(6), {5: [f"m{i}" for i in range(6)]}, seed=3)
        payloads = [m.payload for m in result.delivered]
        assert payloads == [f"m{i}" for i in range(6)]

    def test_single_level_classes_also_correct(self):
        """Ablation E11: without mod-3 multiplexing, still exactly-once."""
        graph = grid(3, 3)
        sources = {n: ["v"] for n in graph.nodes if n != 0}
        result = collect(graph, sources, seed=4, level_classes=1)
        assert len(result.delivered) == 8

    def test_reactive_mid_run_submission(self):
        graph = path(5)
        tree = reference_bfs_tree(graph, 0)
        network, processes, slots = build_collection_network(
            graph, tree, {4: ["early"]}, seed=9
        )
        root = processes[0]
        network.run(200_000, until=lambda n: len(root.delivered) >= 1)
        processes[2].submit("late")
        network.run(200_000, until=lambda n: len(root.delivered) >= 2)
        assert sorted(m.payload for m in root.delivered) == ["early", "late"]

    def test_deterministic_given_seed(self):
        graph = grid(3, 3)
        sources = {8: ["a"], 5: ["b"]}
        r1 = collect(graph, sources, seed=77)
        r2 = collect(graph, sources, seed=77)
        assert r1.slots == r2.slots
        assert [m.msg_id for m in r1.delivered] == [
            m.msg_id for m in r2.delivered
        ]

    def test_varies_across_seeds(self):
        graph = layered_band(3, 4)
        sources = {n: ["x"] for n in graph.nodes if n >= 8}
        slots = {collect(graph, sources, seed=s).slots for s in range(6)}
        assert len(slots) > 1


class TestPerformanceEnvelope:
    def test_within_theorem_44_bound_path(self):
        """Average over seeds stays under the Thm 4.4 envelope (×3 classes)."""
        graph = path(10)
        tree = reference_bfs_tree(graph, 0)
        k = 6
        sources = {9: ["m"] * k}
        bound = expected_collection_slots(
            k, tree.depth, graph.max_degree(), level_classes=3
        )
        totals = [
            run_collection(graph, tree, sources, seed=s).slots
            for s in range(10)
        ]
        assert sum(totals) / len(totals) <= bound

    def test_within_bound_star(self):
        graph = star(16)
        tree = reference_bfs_tree(graph, 0)
        sources = {n: ["m"] for n in range(1, 16)}
        bound = expected_collection_slots(
            15, tree.depth, graph.max_degree(), level_classes=3
        )
        totals = [
            run_collection(graph, tree, sources, seed=s).slots
            for s in range(10)
        ]
        assert sum(totals) / len(totals) <= bound

    def test_constants(self):
        assert abs(MU - 0.23254) < 1e-4
        assert abs(LAMBDA_STAR - 0.123954) < 1e-5
        assert abs(theorem_44_constant() - 32.27) < 0.01

    def test_phase_bound_formula(self):
        assert expected_collection_phases(0, 0) == 0
        assert (
            abs(expected_collection_phases(10, 5) - 15 / LAMBDA_STAR) < 1e-9
        )

    def test_slot_bound_scaling(self):
        base = expected_collection_slots(10, 5, 8)
        assert expected_collection_slots(10, 5, 8, level_classes=3) == 3 * base
        assert expected_collection_slots(25, 5, 8) > base
