"""Unit tests for the radio simulation engine (model semantics of §1.1)."""

import pytest

from repro.errors import ConfigurationError, ProtocolError, SimulationTimeout
from repro.graphs import Graph, path, star
from repro.radio import (
    CollisionEvent,
    DeliverEvent,
    EventTrace,
    PermanentCrashes,
    Process,
    RadioNetwork,
    ScriptedProcess,
    SilentProcess,
    Transmission,
)


def wire(graph, scripts):
    """Build a network with ScriptedProcesses (listeners elsewhere)."""
    net = RadioNetwork(graph, num_channels=2)
    procs = {}
    for node in graph.nodes:
        proc = ScriptedProcess(node, scripts.get(node))
        procs[node] = proc
        net.attach(proc)
    return net, procs


class TestReceptionSemantics:
    def test_single_transmitter_is_received(self):
        net, procs = wire(path(3), {0: {0: Transmission("hi")}})
        net.step()
        assert procs[1].heard == [(0, 0, "hi")]
        assert procs[2].heard == []  # out of range

    def test_two_transmitters_collide(self):
        g = star(3)  # 0 center; 1, 2 leaves
        net, procs = wire(
            g, {1: {0: Transmission("a")}, 2: {0: Transmission("b")}}
        )
        net.step()
        assert procs[0].heard == []  # collision, and no detection signal

    def test_collision_is_local_not_global(self):
        # 1 - 0 - 2 and isolated edge 3 - 4; 1, 2 and 3 transmit.
        g = Graph.from_edges([(0, 1), (0, 2), (3, 4)])
        net, procs = wire(
            g,
            {
                1: {0: Transmission("a")},
                2: {0: Transmission("b")},
                3: {0: Transmission("c")},
            },
        )
        net.step()
        assert procs[0].heard == []
        assert procs[4].heard == [(0, 0, "c")]

    def test_transmitter_does_not_hear_its_own_channel(self):
        g = path(2)
        net, procs = wire(
            g, {0: {0: Transmission("x")}, 1: {0: Transmission("y")}}
        )
        net.step()
        assert procs[0].heard == []
        assert procs[1].heard == []

    def test_channels_are_independent(self):
        g = path(2)
        net, procs = wire(
            g,
            {
                0: {0: Transmission("up", channel=0)},
                1: {0: Transmission("down", channel=1)},
            },
        )
        net.step()
        # Each node transmits on one channel and hears the other.
        assert procs[0].heard == [(0, 1, "down")]
        assert procs[1].heard == [(0, 0, "up")]

    def test_simultaneous_transmissions_on_two_channels(self):
        g = path(2)
        net, procs = wire(
            g,
            {
                0: {
                    0: [
                        Transmission("a", channel=0),
                        Transmission("b", channel=1),
                    ]
                }
            },
        )
        net.step()
        assert sorted(procs[1].heard) == [(0, 0, "a"), (0, 1, "b")]

    def test_reception_requires_exactly_one_even_across_slots(self):
        g = star(3)
        net, procs = wire(
            g,
            {
                1: {0: Transmission("a"), 1: Transmission("a2")},
                2: {0: Transmission("b")},
            },
        )
        net.step()  # slot 0: collision
        net.step()  # slot 1: only node 1 transmits
        assert procs[0].heard == [(1, 0, "a2")]


class TestEngineValidation:
    def test_channel_out_of_range(self):
        net, _ = wire(path(2), {0: {0: Transmission("x", channel=5)}})
        with pytest.raises(ProtocolError):
            net.step()

    def test_negative_channel_rejected_at_construction(self):
        with pytest.raises(ValueError):
            Transmission("x", channel=-1)

    def test_double_transmit_same_channel(self):
        net, _ = wire(
            path(2),
            {0: {0: [Transmission("x"), Transmission("y")]}},
        )
        with pytest.raises(ProtocolError):
            net.step()

    def test_attach_unknown_station(self):
        net = RadioNetwork(path(2))
        with pytest.raises(ConfigurationError):
            net.attach(SilentProcess(99))

    def test_step_requires_full_attachment(self):
        net = RadioNetwork(path(3))
        net.attach(SilentProcess(0))
        with pytest.raises(ConfigurationError):
            net.step()

    def test_zero_channels_rejected(self):
        with pytest.raises(ConfigurationError):
            RadioNetwork(path(2), num_channels=0)


class TestRunLoop:
    def test_run_counts_slots(self):
        net = RadioNetwork(path(2))
        net.attach_all(SilentProcess)
        assert net.run(7) == 7
        assert net.slot == 7

    def test_until_predicate_stops_early(self):
        net = RadioNetwork(path(2))
        net.attach_all(SilentProcess)
        executed = net.run(100, until=lambda n: n.slot >= 5)
        assert executed == 5

    def test_until_already_true(self):
        net = RadioNetwork(path(2))
        net.attach_all(SilentProcess)
        assert net.run(10, until=lambda n: True) == 0

    def test_timeout_raises(self):
        net = RadioNetwork(path(2))
        net.attach_all(SilentProcess)
        with pytest.raises(SimulationTimeout):
            net.run(3, until=lambda n: False)

    def test_run_until_done(self):
        class DoneAfter(Process):
            def is_done(self):
                return True

        net = RadioNetwork(path(2))
        net.attach_all(DoneAfter)
        assert net.run_until_done(10) == 0

    def test_negative_max_slots(self):
        net = RadioNetwork(path(2))
        net.attach_all(SilentProcess)
        with pytest.raises(ConfigurationError):
            net.run(-1)


class TestStatsAndTrace:
    def test_counters(self):
        g = star(3)
        net, _ = wire(
            g, {1: {0: Transmission("a")}, 2: {0: Transmission("b")}}
        )
        net.step()
        assert net.stats.transmissions == 2
        assert net.stats.collisions == 1
        assert net.stats.deliveries == 0
        assert net.stats.slots == 1

    def test_delivery_counter(self):
        net, _ = wire(path(3), {1: {0: Transmission("m")}})
        net.step()
        assert net.stats.deliveries == 2  # both path neighbors hear

    def test_trace_events(self):
        trace = EventTrace()
        g = star(3)
        net = RadioNetwork(g, trace=trace)
        net.attach(ScriptedProcess(0, {}))
        net.attach(ScriptedProcess(1, {0: Transmission("a")}))
        net.attach(ScriptedProcess(2, {0: Transmission("b")}))
        net.step()
        assert len(trace.transmissions) == 2
        collisions = trace.collisions
        assert len(collisions) == 1
        assert isinstance(collisions[0], CollisionEvent)
        assert collisions[0].receiver == 0
        assert set(collisions[0].senders) == {1, 2}

    def test_trace_delivery_records_sender(self):
        trace = EventTrace()
        net = RadioNetwork(path(2), trace=trace)
        net.attach(ScriptedProcess(0, {0: Transmission("z")}))
        net.attach(ScriptedProcess(1, {}))
        net.step()
        deliveries = trace.deliveries
        assert len(deliveries) == 1
        event = deliveries[0]
        assert isinstance(event, DeliverEvent)
        assert (event.sender, event.receiver, event.payload) == (0, 1, "z")

    def test_trace_max_events(self):
        trace = EventTrace(max_events=1)
        net = RadioNetwork(path(3), trace=trace)
        net.attach(ScriptedProcess(0, {0: Transmission("z")}))
        net.attach(ScriptedProcess(1, {}))
        net.attach(ScriptedProcess(2, {}))
        net.step()
        assert len(trace) == 1  # recording stopped, counters stay exact
        assert net.stats.deliveries == 1


class TestFailureIntegration:
    def test_crashed_station_neither_sends_nor_receives(self):
        g = path(3)
        net = RadioNetwork(g, failures=PermanentCrashes({1}))
        net.attach(ScriptedProcess(0, {0: Transmission("m")}))
        p1 = ScriptedProcess(1, {0: Transmission("x")})
        net.attach(p1)
        p2 = ScriptedProcess(2, {})
        net.attach(p2)
        net.step()
        assert p1.heard == []
        # node 2 hears nothing (its only neighbor, 1, is down)
        assert p2.heard == []
        assert net.stats.transmissions == 1  # only node 0 got to transmit

    def test_crashed_station_does_not_cause_collisions(self):
        g = star(3)
        net = RadioNetwork(g, failures=PermanentCrashes({2}))
        net.attach(ScriptedProcess(0, {}))
        net.attach(ScriptedProcess(1, {0: Transmission("a")}))
        net.attach(ScriptedProcess(2, {0: Transmission("b")}))
        center = net.process(0)
        net.step()
        assert center.heard == [(0, 0, "a")]


class TestTopologyCache:
    def test_graph_swap_rebuilds_neighbor_cache(self):
        from repro.radio import RadioNetwork, SilentProcess

        network = RadioNetwork(path(4))
        network.attach_all(SilentProcess)
        cached = network._neighbors
        network.run(10)
        assert network._neighbors is cached  # hot loop never rebuilds

        network.graph = star(5)
        assert network._neighbors is not cached
        assert set(network._neighbors[0]) == set(star(5).neighbors(0))
        # The swap re-arms full-attachment validation: star-5 has an
        # extra station with no process.
        with pytest.raises(ConfigurationError):
            network.step()
