"""Unit tests for the radio simulation engine (model semantics of §1.1)."""

import pytest

from repro.errors import ConfigurationError, ProtocolError, SimulationTimeout
from repro.graphs import Graph, path, star
from repro.radio import (
    CollisionEvent,
    DeliverEvent,
    EventTrace,
    PermanentCrashes,
    Process,
    RadioNetwork,
    ScriptedProcess,
    SilentProcess,
    Transmission,
)


def wire(graph, scripts):
    """Build a network with ScriptedProcesses (listeners elsewhere)."""
    net = RadioNetwork(graph, num_channels=2)
    procs = {}
    for node in graph.nodes:
        proc = ScriptedProcess(node, scripts.get(node))
        procs[node] = proc
        net.attach(proc)
    return net, procs


class TestReceptionSemantics:
    def test_single_transmitter_is_received(self):
        net, procs = wire(path(3), {0: {0: Transmission("hi")}})
        net.step()
        assert procs[1].heard == [(0, 0, "hi")]
        assert procs[2].heard == []  # out of range

    def test_two_transmitters_collide(self):
        g = star(3)  # 0 center; 1, 2 leaves
        net, procs = wire(
            g, {1: {0: Transmission("a")}, 2: {0: Transmission("b")}}
        )
        net.step()
        assert procs[0].heard == []  # collision, and no detection signal

    def test_collision_is_local_not_global(self):
        # 1 - 0 - 2 and isolated edge 3 - 4; 1, 2 and 3 transmit.
        g = Graph.from_edges([(0, 1), (0, 2), (3, 4)])
        net, procs = wire(
            g,
            {
                1: {0: Transmission("a")},
                2: {0: Transmission("b")},
                3: {0: Transmission("c")},
            },
        )
        net.step()
        assert procs[0].heard == []
        assert procs[4].heard == [(0, 0, "c")]

    def test_transmitter_does_not_hear_its_own_channel(self):
        g = path(2)
        net, procs = wire(
            g, {0: {0: Transmission("x")}, 1: {0: Transmission("y")}}
        )
        net.step()
        assert procs[0].heard == []
        assert procs[1].heard == []

    def test_channels_are_independent(self):
        g = path(2)
        net, procs = wire(
            g,
            {
                0: {0: Transmission("up", channel=0)},
                1: {0: Transmission("down", channel=1)},
            },
        )
        net.step()
        # Each node transmits on one channel and hears the other.
        assert procs[0].heard == [(0, 1, "down")]
        assert procs[1].heard == [(0, 0, "up")]

    def test_simultaneous_transmissions_on_two_channels(self):
        g = path(2)
        net, procs = wire(
            g,
            {
                0: {
                    0: [
                        Transmission("a", channel=0),
                        Transmission("b", channel=1),
                    ]
                }
            },
        )
        net.step()
        assert sorted(procs[1].heard) == [(0, 0, "a"), (0, 1, "b")]

    def test_reception_requires_exactly_one_even_across_slots(self):
        g = star(3)
        net, procs = wire(
            g,
            {
                1: {0: Transmission("a"), 1: Transmission("a2")},
                2: {0: Transmission("b")},
            },
        )
        net.step()  # slot 0: collision
        net.step()  # slot 1: only node 1 transmits
        assert procs[0].heard == [(1, 0, "a2")]


class TestEngineValidation:
    def test_channel_out_of_range(self):
        net, _ = wire(path(2), {0: {0: Transmission("x", channel=5)}})
        with pytest.raises(ProtocolError):
            net.step()

    def test_negative_channel_rejected_at_construction(self):
        with pytest.raises(ValueError):
            Transmission("x", channel=-1)

    def test_double_transmit_same_channel(self):
        net, _ = wire(
            path(2),
            {0: {0: [Transmission("x"), Transmission("y")]}},
        )
        with pytest.raises(ProtocolError):
            net.step()

    def test_attach_unknown_station(self):
        net = RadioNetwork(path(2))
        with pytest.raises(ConfigurationError):
            net.attach(SilentProcess(99))

    def test_step_requires_full_attachment(self):
        net = RadioNetwork(path(3))
        net.attach(SilentProcess(0))
        with pytest.raises(ConfigurationError):
            net.step()

    def test_zero_channels_rejected(self):
        with pytest.raises(ConfigurationError):
            RadioNetwork(path(2), num_channels=0)


class TestRunLoop:
    def test_run_counts_slots(self):
        net = RadioNetwork(path(2))
        net.attach_all(SilentProcess)
        assert net.run(7) == 7
        assert net.slot == 7

    def test_until_predicate_stops_early(self):
        net = RadioNetwork(path(2))
        net.attach_all(SilentProcess)
        executed = net.run(100, until=lambda n: n.slot >= 5)
        assert executed == 5

    def test_until_already_true(self):
        net = RadioNetwork(path(2))
        net.attach_all(SilentProcess)
        assert net.run(10, until=lambda n: True) == 0

    def test_timeout_raises(self):
        net = RadioNetwork(path(2))
        net.attach_all(SilentProcess)
        with pytest.raises(SimulationTimeout):
            net.run(3, until=lambda n: False)

    def test_run_until_done(self):
        class DoneAfter(Process):
            def is_done(self):
                return True

        net = RadioNetwork(path(2))
        net.attach_all(DoneAfter)
        assert net.run_until_done(10) == 0

    def test_negative_max_slots(self):
        net = RadioNetwork(path(2))
        net.attach_all(SilentProcess)
        with pytest.raises(ConfigurationError):
            net.run(-1)


class TestStatsAndTrace:
    def test_counters(self):
        g = star(3)
        net, _ = wire(
            g, {1: {0: Transmission("a")}, 2: {0: Transmission("b")}}
        )
        net.step()
        assert net.stats.transmissions == 2
        assert net.stats.collisions == 1
        assert net.stats.deliveries == 0
        assert net.stats.slots == 1

    def test_delivery_counter(self):
        net, _ = wire(path(3), {1: {0: Transmission("m")}})
        net.step()
        assert net.stats.deliveries == 2  # both path neighbors hear

    def test_trace_events(self):
        trace = EventTrace()
        g = star(3)
        net = RadioNetwork(g, trace=trace)
        net.attach(ScriptedProcess(0, {}))
        net.attach(ScriptedProcess(1, {0: Transmission("a")}))
        net.attach(ScriptedProcess(2, {0: Transmission("b")}))
        net.step()
        assert len(trace.transmissions) == 2
        collisions = trace.collisions
        assert len(collisions) == 1
        assert isinstance(collisions[0], CollisionEvent)
        assert collisions[0].receiver == 0
        assert set(collisions[0].senders) == {1, 2}

    def test_trace_delivery_records_sender(self):
        trace = EventTrace()
        net = RadioNetwork(path(2), trace=trace)
        net.attach(ScriptedProcess(0, {0: Transmission("z")}))
        net.attach(ScriptedProcess(1, {}))
        net.step()
        deliveries = trace.deliveries
        assert len(deliveries) == 1
        event = deliveries[0]
        assert isinstance(event, DeliverEvent)
        assert (event.sender, event.receiver, event.payload) == (0, 1, "z")

    def test_trace_max_events(self):
        trace = EventTrace(max_events=1)
        net = RadioNetwork(path(3), trace=trace)
        net.attach(ScriptedProcess(0, {0: Transmission("z")}))
        net.attach(ScriptedProcess(1, {}))
        net.attach(ScriptedProcess(2, {}))
        net.step()
        assert len(trace) == 1  # recording stopped, counters stay exact
        assert net.stats.deliveries == 1


class TestFailureIntegration:
    def test_crashed_station_neither_sends_nor_receives(self):
        g = path(3)
        net = RadioNetwork(g, failures=PermanentCrashes({1}))
        net.attach(ScriptedProcess(0, {0: Transmission("m")}))
        p1 = ScriptedProcess(1, {0: Transmission("x")})
        net.attach(p1)
        p2 = ScriptedProcess(2, {})
        net.attach(p2)
        net.step()
        assert p1.heard == []
        # node 2 hears nothing (its only neighbor, 1, is down)
        assert p2.heard == []
        assert net.stats.transmissions == 1  # only node 0 got to transmit

    def test_crashed_station_does_not_cause_collisions(self):
        g = star(3)
        net = RadioNetwork(g, failures=PermanentCrashes({2}))
        net.attach(ScriptedProcess(0, {}))
        net.attach(ScriptedProcess(1, {0: Transmission("a")}))
        net.attach(ScriptedProcess(2, {0: Transmission("b")}))
        center = net.process(0)
        net.step()
        assert center.heard == [(0, 0, "a")]


class TestTopologyCache:
    def test_graph_swap_rebuilds_neighbor_cache(self):
        from repro.radio import RadioNetwork, SilentProcess

        network = RadioNetwork(path(4))
        network.attach_all(SilentProcess)
        cached = network._neighbors
        network.run(10)
        assert network._neighbors is cached  # hot loop never rebuilds

        network.graph = star(5)
        assert network._neighbors is not cached
        assert set(network._neighbors[0]) == set(star(5).neighbors(0))
        # The swap re-arms full-attachment validation: star-5 has an
        # extra station with no process.
        with pytest.raises(ConfigurationError):
            network.step()


class TestCaptureEffect:
    """§8 remark (3): collisions deliver one captured message at random."""

    def star_net(self, capture_seed=0, trace=None):
        # Leaves 1..3 all transmit to the center in slot 0.
        g = star(4)
        net = RadioNetwork(
            g, capture_effect=True, capture_seed=capture_seed, trace=trace
        )
        net.attach(ScriptedProcess(0, {}))
        for leaf in (1, 2, 3):
            net.attach(
                ScriptedProcess(leaf, {0: Transmission(f"m{leaf}")})
            )
        return net

    def test_collision_delivers_exactly_one_colliding_payload(self):
        net = self.star_net()
        net.step()
        heard = net.process(0).heard
        assert len(heard) == 1
        assert heard[0][2] in {"m1", "m2", "m3"}
        # It still counts as a collision AND a delivery.
        assert net.stats.channel(0).collisions == 1
        assert net.stats.channel(0).deliveries == 1

    def test_capture_choice_is_seed_deterministic(self):
        for seed in (0, 1, 7, 42):
            first = self.star_net(capture_seed=seed)
            second = self.star_net(capture_seed=seed)
            first.step()
            second.step()
            assert first.process(0).heard == second.process(0).heard

    def test_colliders_tuple_records_all_in_range_senders(self):
        trace = EventTrace()
        net = self.star_net(trace=trace)
        net.step()
        collisions = [
            e for e in trace.events if isinstance(e, CollisionEvent)
        ]
        assert len(collisions) == 1
        assert sorted(collisions[0].senders) == [1, 2, 3]
        # The captured payload is one of the colliders' transmissions.
        delivery = [
            e for e in trace.events if isinstance(e, DeliverEvent)
        ][0]
        assert delivery.sender in collisions[0].senders
        assert delivery.payload == f"m{delivery.sender}"

    def test_colliders_are_local_to_the_receiver(self):
        # 1 - 0 - 2, plus 3 - 4: node 3 transmits too, but it is out of
        # range of node 0, so it must not appear among 0's colliders.
        g = Graph.from_edges([(0, 1), (0, 2), (3, 4)])
        trace = EventTrace()
        net = RadioNetwork(
            g, capture_effect=True, capture_seed=0, trace=trace
        )
        scripts = {
            1: {0: Transmission("a")},
            2: {0: Transmission("b")},
            3: {0: Transmission("c")},
        }
        for node in g.nodes:
            net.attach(ScriptedProcess(node, scripts.get(node)))
        net.step()
        collision = [
            e for e in trace.events if isinstance(e, CollisionEvent)
        ][0]
        assert collision.receiver == 0
        assert sorted(collision.senders) == [1, 2]
        assert net.process(0).heard[0][2] in {"a", "b"}
        # Node 4 heard node 3 cleanly — no collision there.
        assert net.process(4).heard == [(0, 0, "c")]

    def test_capture_ignored_when_exactly_one_transmits(self):
        g = star(3)
        net = RadioNetwork(g, capture_effect=True, capture_seed=0)
        net.attach(ScriptedProcess(0, {}))
        net.attach(ScriptedProcess(1, {0: Transmission("solo")}))
        net.attach(ScriptedProcess(2, {}))
        net.step()
        assert net.process(0).heard == [(0, 0, "solo")]
        assert net.stats.channel(0).collisions == 0


class TestMultiChannelReception:
    def test_collision_and_delivery_are_per_channel(self):
        # Channel 0 collides at the center; channel 1 delivers cleanly
        # in the very same slot.
        g = star(4)
        net = RadioNetwork(g, num_channels=2)
        net.attach(ScriptedProcess(0, {}))
        net.attach(ScriptedProcess(1, {0: Transmission("a", channel=0)}))
        net.attach(ScriptedProcess(2, {0: Transmission("b", channel=0)}))
        net.attach(ScriptedProcess(3, {0: Transmission("c", channel=1)}))
        net.step()
        assert net.process(0).heard == [(0, 1, "c")]
        assert net.stats.channel(0).collisions == 1
        assert net.stats.channel(1).deliveries == 1

    def test_capture_effect_resolves_each_channel_independently(self):
        g = star(5)
        trace = EventTrace()
        net = RadioNetwork(
            g,
            num_channels=2,
            capture_effect=True,
            capture_seed=3,
            trace=trace,
        )
        net.attach(ScriptedProcess(0, {}))
        net.attach(ScriptedProcess(1, {0: Transmission("a0", channel=0)}))
        net.attach(ScriptedProcess(2, {0: Transmission("b0", channel=0)}))
        net.attach(ScriptedProcess(3, {0: Transmission("a1", channel=1)}))
        net.attach(ScriptedProcess(4, {0: Transmission("b1", channel=1)}))
        net.step()
        heard = sorted(net.process(0).heard)
        assert len(heard) == 2
        assert heard[0][1] == 0 and heard[0][2] in {"a0", "b0"}
        assert heard[1][1] == 1 and heard[1][2] in {"a1", "b1"}
        collisions = [
            e for e in trace.events if isinstance(e, CollisionEvent)
        ]
        assert {(c.channel, tuple(sorted(c.senders))) for c in collisions} \
            == {(0, (1, 2)), (1, (3, 4))}

    def test_transmitter_on_one_channel_receives_on_the_other(self):
        g = path(2)
        net = RadioNetwork(g, num_channels=2)
        net.attach(ScriptedProcess(0, {0: Transmission("up", channel=0)}))
        net.attach(ScriptedProcess(1, {0: Transmission("down", channel=1)}))
        net.step()
        # Each station is busy on its own channel but listening on the
        # other (one transceiver per channel, §1.4).
        assert net.process(0).heard == [(0, 1, "down")]
        assert net.process(1).heard == [(0, 0, "up")]
