"""The wire codec: round trips, then fuzz — the decoder never raises.

The coordinator protocol rides on :mod:`repro.runner.wire`'s
magic-prefixed frames, and its whole fault story rests on two codec
properties: (1) every well-formed frame that arrives intact is decoded,
no matter how the stream is sliced into ``recv`` returns, and (2) no
byte sequence — truncated frames, garbage, oversized headers, payload
bytes that contain the magic — makes the decoder raise or mis-frame
what follows.  These tests state both properties directly, including a
deterministic fuzz loop over randomly mangled streams.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.runner.wire import (
    HEADER_SIZE,
    MAGIC,
    MAX_FRAME,
    FrameDecoder,
    FrameError,
    encode_frame,
)


def _payloads(n: int):
    return [{"op": "claim", "seq": i, "host": f"h{i % 3}"} for i in range(n)]


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------


def test_roundtrip_single_frame():
    payload = {"op": "ping", "rid": "a-1", "nested": {"x": [1, 2, 3]}}
    decoder = FrameDecoder()
    frames = decoder.feed(encode_frame(payload))
    assert frames == [payload]
    assert decoder.pending_bytes == 0
    assert all(v == 0 for v in decoder.stats().values())


def test_roundtrip_many_frames_one_feed():
    payloads = _payloads(20)
    blob = b"".join(encode_frame(p) for p in payloads)
    assert FrameDecoder().feed(blob) == payloads


@pytest.mark.parametrize("chunk", [1, 2, 3, 7, HEADER_SIZE, 64])
def test_roundtrip_survives_any_read_slicing(chunk):
    """TCP may deliver any byte-slicing; framing must not care."""
    payloads = _payloads(8)
    blob = b"".join(encode_frame(p) for p in payloads)
    decoder = FrameDecoder()
    got = []
    for i in range(0, len(blob), chunk):
        got.extend(decoder.feed(blob[i:i + chunk]))
    assert got == payloads
    assert decoder.pending_bytes == 0


def test_encode_rejects_unserializable_and_oversized():
    with pytest.raises(FrameError):
        encode_frame({"bad": object()})
    with pytest.raises(FrameError):
        encode_frame({"blob": "x" * 64}, max_frame=16)


def test_payload_containing_magic_bytes_is_not_misframed():
    # The magic can appear inside a JSON string (escaped); framing goes
    # by the declared length, so it must not trigger a false resync.
    evil = {"data": MAGIC.decode("latin-1"), "tail": "ok"}
    body = json.dumps(evil, sort_keys=True, separators=(",", ":"))
    frame = MAGIC + len(body.encode("utf-8")).to_bytes(4, "big") + body.encode(
        "utf-8"
    )
    after = {"op": "next"}
    decoder = FrameDecoder()
    got = decoder.feed(frame + encode_frame(after))
    assert got[-1] == after


# ----------------------------------------------------------------------
# Damage: each fault class in isolation
# ----------------------------------------------------------------------


def test_truncated_frame_resyncs_to_next():
    a, b, c = _payloads(3)
    fa, fb, fc = (encode_frame(p) for p in (a, b, c))
    # Frame b loses its last third; its declared length then swallows
    # the start of c.  The decoder must still deliver a, and resync.
    damaged = fa + fb[: (2 * len(fb)) // 3] + fc
    decoder = FrameDecoder()
    got = decoder.feed(damaged)
    assert a in got
    assert b not in got  # physically gone
    assert decoder.bad_frames >= 1 or decoder.resyncs >= 1


def test_garbage_between_frames_is_skipped_and_counted():
    a, b = _payloads(2)
    noise = b"\x00\xff\x13garbage\x7f" * 3
    decoder = FrameDecoder()
    got = decoder.feed(noise + encode_frame(a) + noise + encode_frame(b))
    assert got == [a, b]
    assert decoder.resyncs >= 2
    assert decoder.garbage_bytes >= len(noise)


def test_oversized_header_does_not_stall_the_stream():
    # A header declaring 2 GiB must be discarded, not waited for.
    evil = MAGIC + (2**31).to_bytes(4, "big") + b"xx"
    after = _payloads(1)[0]
    decoder = FrameDecoder()
    got = decoder.feed(evil + encode_frame(after))
    assert got == [after]
    assert decoder.oversized_frames == 1


def test_duplicated_and_reordered_frames_decode_individually():
    a, b = _payloads(2)
    fa, fb = encode_frame(a), encode_frame(b)
    # Framing is stateless across frames: dup and reorder are the rid
    # layer's problem, the codec just delivers what arrived.
    assert FrameDecoder().feed(fb + fa + fa) == [b, a, a]


def test_non_object_json_payload_is_a_bad_frame():
    body = b"[1,2,3]"
    frame = MAGIC + len(body).to_bytes(4, "big") + body
    after = _payloads(1)[0]
    decoder = FrameDecoder()
    got = decoder.feed(frame + encode_frame(after))
    assert got == [after]
    assert decoder.bad_frames == 1


def test_magic_split_across_reads_is_kept():
    payload = _payloads(1)[0]
    frame = encode_frame(payload)
    decoder = FrameDecoder()
    assert decoder.feed(frame[:2]) == []
    assert decoder.feed(frame[2:]) == [payload]
    assert decoder.garbage_bytes == 0


# ----------------------------------------------------------------------
# Fuzz: mangled streams never raise, intact frames still decode
# ----------------------------------------------------------------------


def _mangle(rng: random.Random, frames):
    """Apply one random fault per frame, proxy-style."""
    out = bytearray()
    survivors = []
    for payload, raw in frames:
        action = rng.choice(
            ["keep", "keep", "keep", "drop", "dup", "truncate", "garbage"]
        )
        if action == "drop":
            continue
        if action == "garbage":
            out += bytes(rng.getrandbits(8) for _ in range(rng.randint(1, 40)))
        if action == "truncate":
            out += raw[: rng.randint(1, len(raw) - 1)]
            continue
        out += raw
        survivors.append(payload)
        if action == "dup":
            out += raw
            survivors.append(payload)
    return bytes(out), survivors


@pytest.mark.parametrize("seed", range(12))
def test_fuzz_mangled_stream_never_raises(seed):
    rng = random.Random(seed)
    frames = [
        (p, encode_frame(p))
        for p in (
            {"op": "claim", "i": i, "blob": "z" * rng.randint(0, 200)}
            for i in range(30)
        )
    ]
    blob, survivors = _mangle(rng, frames)
    decoder = FrameDecoder()
    got = []
    pos = 0
    while pos < len(blob):
        step = rng.randint(1, 37)
        got.extend(decoder.feed(blob[pos:pos + step]))
        pos += step
    # Everything decoded was genuinely sent (possibly duplicated)...
    sent = [p for p, _ in frames]
    for payload in got:
        assert payload in sent
    # ...and at most the frames adjacent to damage were lost: every
    # surviving frame NOT immediately following damage must decode.
    # (A truncated frame's declared length may swallow its successor.)
    assert len(got) >= max(0, len(survivors) - blob.count(MAGIC))


def test_fuzz_pure_garbage_never_raises_or_grows():
    rng = random.Random(99)
    decoder = FrameDecoder(max_frame=4096)
    for _ in range(200):
        decoder.feed(bytes(rng.getrandbits(8) for _ in range(rng.randint(1, 512))))
    # The buffer must stay bounded: garbage is discarded, not hoarded.
    assert decoder.pending_bytes <= HEADER_SIZE + 4096
    assert decoder.garbage_bytes > 0


def test_default_ceiling_matches_module_constant():
    assert FrameDecoder().max_frame == MAX_FRAME
