"""Unit tests for the BFSTree structure and DFS-interval addressing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.graphs import (
    BFSTree,
    Graph,
    bfs_levels,
    grid,
    gnp_connected,
    path,
    random_tree,
    reference_bfs_tree,
    star,
)


class TestReferenceTree:
    def test_levels_are_distances(self):
        g = grid(4, 4)
        tree = reference_bfs_tree(g, 0)
        assert tree.level == bfs_levels(g, 0)

    def test_parents_are_neighbors_one_level_up(self):
        g = gnp_connected(18, 0.25, random.Random(1))
        tree = reference_bfs_tree(g, 3)
        for node in g.nodes:
            if node == 3:
                continue
            parent = tree.parent[node]
            assert g.has_edge(node, parent)
            assert tree.level[node] == tree.level[parent] + 1

    def test_disconnected_raises(self):
        g = Graph.from_edges([(0, 1)], nodes=[0, 1, 2])
        with pytest.raises(TopologyError):
            reference_bfs_tree(g, 0)

    def test_unknown_root(self):
        with pytest.raises(TopologyError):
            reference_bfs_tree(path(3), 42)

    def test_deterministic(self):
        g = gnp_connected(15, 0.3, random.Random(2))
        assert reference_bfs_tree(g, 0).parent == reference_bfs_tree(g, 0).parent


class TestValidation:
    def test_root_must_be_own_parent(self):
        with pytest.raises(TopologyError):
            BFSTree(root=0, parent={0: 1, 1: 1}, level={0: 0, 1: 1})

    def test_root_level_zero(self):
        with pytest.raises(TopologyError):
            BFSTree(root=0, parent={0: 0}, level={0: 3})

    def test_level_gap_rejected(self):
        with pytest.raises(TopologyError):
            BFSTree(
                root=0,
                parent={0: 0, 1: 0},
                level={0: 0, 1: 2},
            )

    def test_unknown_parent_rejected(self):
        with pytest.raises(TopologyError):
            BFSTree(root=0, parent={0: 0, 1: 9}, level={0: 0, 1: 1})


class TestStructureQueries:
    @pytest.fixture
    def tree(self):
        return reference_bfs_tree(grid(3, 3), 0)

    def test_children_inverse_of_parent(self, tree):
        for node in tree.nodes:
            for child in tree.children[node]:
                assert tree.parent[child] == node

    def test_depth(self, tree):
        assert tree.depth == 4

    def test_layer(self, tree):
        assert tree.layer(0) == (0,)
        assert set(tree.layer(1)) == {1, 3}

    def test_path_to_root(self, tree):
        p = tree.path_to_root(8)
        assert p[0] == 8 and p[-1] == 0
        assert len(p) == tree.level[8] + 1

    def test_subtree_contains_descendants(self, tree):
        everything = list(tree.subtree(tree.root))
        assert sorted(everything) == list(tree.nodes)
        assert tree.subtree_size(tree.root) == tree.num_nodes

    def test_tree_edges_count(self, tree):
        assert len(list(tree.tree_edges())) == tree.num_nodes - 1


class TestLca:
    def test_lca_on_path(self):
        tree = reference_bfs_tree(path(7), 3)
        assert tree.lca(0, 6) == 3
        assert tree.lca(0, 1) == 1
        assert tree.lca(5, 5) == 5

    def test_lca_vs_path_intersection(self):
        g = gnp_connected(16, 0.3, random.Random(4))
        tree = reference_bfs_tree(g, 0)
        for u in [1, 5, 9]:
            for v in [2, 7, 15]:
                meet = tree.lca(u, v)
                up = set(tree.path_to_root(u))
                vp = tree.path_to_root(v)
                # the lca is the first node of v's root path that is an
                # ancestor of u
                first_common = next(x for x in vp if x in up)
                assert meet == first_common

    def test_tree_path_is_valid_walk(self):
        g = grid(4, 4)
        tree = reference_bfs_tree(g, 0)
        walk = tree.tree_path(12, 7)
        assert walk[0] == 12 and walk[-1] == 7
        for a, b in zip(walk, walk[1:]):
            assert tree.parent[a] == b or tree.parent[b] == a


class TestDfsIntervals:
    @pytest.mark.parametrize("seed", range(4))
    def test_numbers_are_a_permutation(self, seed):
        g = random_tree(20, random.Random(seed))
        tree = reference_bfs_tree(g, 0)
        tree.assign_dfs_intervals()
        assert sorted(tree.dfs_number.values()) == list(range(20))

    def test_interval_covers_exactly_subtree(self):
        g = gnp_connected(17, 0.3, random.Random(6))
        tree = reference_bfs_tree(g, 0)
        tree.assign_dfs_intervals()
        for node in tree.nodes:
            subtree_numbers = sorted(
                tree.dfs_number[v] for v in tree.subtree(node)
            )
            low, high = tree.dfs_number[node], tree.subtree_max[node]
            assert subtree_numbers == list(range(low, high + 1))

    def test_root_owns_everything(self):
        tree = reference_bfs_tree(grid(3, 3), 0)
        tree.assign_dfs_intervals()
        assert tree.dfs_number[0] == 0
        assert tree.subtree_max[0] == tree.num_nodes - 1

    def test_owns_address(self):
        tree = reference_bfs_tree(path(5), 0)
        tree.assign_dfs_intervals()
        leaf = 4
        assert tree.owns_address(leaf, tree.dfs_number[leaf])
        assert not tree.owns_address(leaf, tree.dfs_number[0])

    def test_node_of_address_roundtrip(self):
        tree = reference_bfs_tree(star(6), 0)
        tree.assign_dfs_intervals()
        for node in tree.nodes:
            assert tree.node_of_address(tree.dfs_number[node]) == node

    def test_node_of_unknown_address(self):
        tree = reference_bfs_tree(path(3), 0)
        tree.assign_dfs_intervals()
        with pytest.raises(TopologyError):
            tree.node_of_address(99)

    def test_route_next_hop_walks_tree_path(self):
        g = gnp_connected(15, 0.3, random.Random(8))
        tree = reference_bfs_tree(g, 0)
        tree.assign_dfs_intervals()
        for source in [2, 9]:
            for dest in [1, 14]:
                current = source
                hops = 0
                while current != dest:
                    current = tree.route_next_hop(
                        current, tree.dfs_number[dest]
                    )
                    hops += 1
                    assert hops <= tree.num_nodes
                expected = len(tree.tree_path(source, dest)) - 1
                assert hops == expected

    def test_route_before_assignment_raises(self):
        tree = reference_bfs_tree(path(3), 0)
        with pytest.raises(TopologyError):
            tree.route_next_hop(0, 2)


@given(st.integers(min_value=2, max_value=40), st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_dfs_intervals_nested_or_disjoint(n, seed):
    """Any two DFS intervals are nested or disjoint (laminar family)."""
    g = random_tree(n, random.Random(seed))
    tree = reference_bfs_tree(g, 0)
    tree.assign_dfs_intervals()
    intervals = [
        (tree.dfs_number[v], tree.subtree_max[v]) for v in tree.nodes
    ]
    for a_low, a_high in intervals:
        for b_low, b_high in intervals:
            nested = (a_low <= b_low and b_high <= a_high) or (
                b_low <= a_low and a_high <= b_high
            )
            disjoint = a_high < b_low or b_high < a_low
            assert nested or disjoint
