"""Tests for the transport lane and §3's deterministic acknowledgements.

The headline property (Theorem 3.1): *every* data message that is
successfully received by its designated destination is acknowledged with
certainty — even though reception itself is probabilistic.  We verify it
engine-wide on adversarially shaped topologies (including the paper's
Figure 1 configuration) by instrumenting collection runs.
"""

import random

import pytest

from repro.core import (
    DataMessage,
    SlotStructure,
    TransportLane,
    run_collection,
)
from repro.core.messages import AckMessage
from repro.errors import ProtocolError
from repro.graphs import (
    Graph,
    grid,
    layered_band,
    path,
    random_geometric,
    reference_bfs_tree,
    star,
)
from repro.radio import DeliverEvent, EventTrace
from repro.core.collection import build_collection_network


def make_lane(level=1, channel=0, strict=True, budget=2):
    slots = SlotStructure(decay_budget=budget, level_classes=3)
    return (
        TransportLane(
            node_id="me",
            level=level,
            slots=slots,
            rng=random.Random(0),
            channel=channel,
            strict=strict,
        ),
        slots,
    )


def data(msg_id, sender, dest):
    return DataMessage(
        msg_id=msg_id,
        origin=sender,
        hop_sender=sender,
        hop_dest=dest,
        payload=None,
    )


class TestTransportLaneUnit:
    def test_enqueue_requires_own_hop_sender(self):
        lane, _ = make_lane()
        with pytest.raises(ProtocolError):
            lane.enqueue(data(("x", 0), sender="other", dest="me"))

    def test_transmits_only_on_own_data_slots(self):
        lane, slots = make_lane(level=1)
        lane.enqueue(data(("me", 0), "me", "parent"))
        for t in range(slots.phase_length):
            tx = lane.on_slot(t)
            if tx is not None:
                assert slots.is_data_slot_for(t, 1)

    def test_ack_scheduled_for_next_slot(self):
        lane, slots = make_lane(level=1)
        # Our data slots are class 1: slot 2 in the first round.
        message = data(("child", 0), "child", "me")
        assert lane.accept_data(2, message) is True
        tx = lane.on_slot(3)
        assert tx is not None
        ack = tx.payload
        assert isinstance(ack, AckMessage)
        assert ack.msg_id == ("child", 0)
        assert ack.hop_dest == "child"

    def test_ack_has_priority_and_is_one_shot(self):
        lane, _ = make_lane(level=1)
        lane.accept_data(2, data(("c", 0), "c", "me"))
        assert lane.on_slot(3) is not None
        assert lane.on_slot(3) is None  # consumed

    def test_accept_data_for_wrong_destination_raises(self):
        lane, _ = make_lane()
        with pytest.raises(ProtocolError):
            lane.accept_data(2, data(("c", 0), "c", "someone-else"))

    def test_duplicate_designated_reception_strict(self):
        lane, slots = make_lane(level=1)
        message = data(("c", 0), "c", "me")
        lane.accept_data(2, message)
        lane.on_slot(3)  # drain the ack
        with pytest.raises(ProtocolError):
            lane.accept_data(2 + slots.phase_length, message)

    def test_duplicate_designated_reception_lenient(self):
        lane, slots = make_lane(level=1, strict=False)
        message = data(("c", 0), "c", "me")
        assert lane.accept_data(2, message) is True
        lane.on_slot(3)
        assert lane.accept_data(2 + slots.phase_length, message) is False
        assert lane.duplicates_seen == 1

    def test_ack_removes_head(self):
        lane, _ = make_lane(level=1)
        message = data(("me", 0), "me", "parent")
        lane.enqueue(message)
        lane.on_slot(2)  # start transmitting
        lane.accept_ack(
            AckMessage(msg_id=("me", 0), hop_sender="parent", hop_dest="me")
        )
        assert lane.backlog == 0
        assert lane.idle

    def test_unmatched_ack_strict_raises(self):
        lane, _ = make_lane(level=1)
        with pytest.raises(ProtocolError):
            lane.accept_ack(
                AckMessage(msg_id=("me", 9), hop_sender="p", hop_dest="me")
            )

    def test_unmatched_ack_lenient_ignored(self):
        lane, _ = make_lane(level=1, strict=False)
        lane.accept_ack(
            AckMessage(msg_id=("me", 9), hop_sender="p", hop_dest="me")
        )
        assert lane.idle

    def test_ack_for_wrong_station_raises(self):
        lane, _ = make_lane()
        with pytest.raises(ProtocolError):
            lane.accept_ack(
                AckMessage(msg_id=("x", 0), hop_sender="p", hop_dest="other")
            )

    def test_head_resent_across_phases_until_acked(self):
        lane, slots = make_lane(level=1)
        lane.enqueue(data(("me", 0), "me", "parent"))
        transmissions = 0
        for t in range(4 * slots.phase_length):
            if lane.on_slot(t) is not None:
                transmissions += 1
        assert transmissions >= 4  # at least one per phase
        assert lane.backlog == 1  # never acked, never dropped


def ack_determinism_scenario(graph, sources, seed):
    """Run collection with a trace and check Theorem 3.1 globally.

    For every delivery of a DataMessage to its designated destination at
    slot t, the original transmitter must receive the matching AckMessage
    at slot t+1.
    """
    tree = reference_bfs_tree(graph, 0)
    network, processes, slots = build_collection_network(
        graph, tree, sources, seed
    )
    trace = EventTrace()
    network.trace = trace
    total = sum(len(v) for v in sources.values())
    root = processes[tree.root]
    network.run(
        200_000,
        until=lambda net: len(root.delivered) >= total
        and all(p.is_done() for p in processes.values()),
    )
    deliveries = trace.deliveries
    data_deliveries = [
        e
        for e in deliveries
        if isinstance(e.payload, DataMessage)
        and e.payload.hop_dest == e.receiver
    ]
    assert data_deliveries, "scenario produced no designated deliveries"
    ack_deliveries = {
        (e.slot, e.receiver, e.payload.msg_id): e
        for e in deliveries
        if isinstance(e.payload, AckMessage)
    }
    for event in data_deliveries:
        key = (event.slot + 1, event.sender, event.payload.msg_id)
        assert key in ack_deliveries, (
            f"message {event.payload.msg_id} received by "
            f"{event.receiver} at slot {event.slot} was never acked back "
            f"to {event.sender}"
        )


class TestAckDeterminism:
    def test_figure_one_topology(self):
        """The paper's Fig. 1: u-v, u'-v', plus cross edges u-v' and u'-v."""
        # 0 = root/parent layer: make both v (1) and v' (2) children of 0;
        # u (3) child of 1, u' (4) child of 2; cross edges 3-2 and 4-1.
        g = Graph.from_edges(
            [(0, 1), (0, 2), (1, 3), (2, 4), (3, 2), (4, 1)]
        )
        sources = {3: ["m1", "m2"], 4: ["m3", "m4"]}
        for seed in range(5):
            ack_determinism_scenario(g, sources, seed)

    def test_dense_layered_band(self):
        g = layered_band(4, 4)
        sources = {n: ["x"] for n in g.nodes if n >= 8}
        ack_determinism_scenario(g, sources, seed=1)

    def test_star_contention(self):
        g = star(9)
        sources = {n: [f"p{n}"] for n in range(1, 9)}
        ack_determinism_scenario(g, sources, seed=3)

    def test_random_geometric(self):
        g = random_geometric(25, 0.35, random.Random(11))
        sources = {n: ["y"] for n in list(g.nodes)[1::3]}
        ack_determinism_scenario(g, sources, seed=7)

    def test_no_duplicates_ever_strict(self):
        """Strict mode would raise on any Thm 3.1 violation; none occurs."""
        g = grid(4, 4)
        tree = reference_bfs_tree(g, 0)
        sources = {n: ["z", "w"] for n in g.nodes if n != 0}
        result = run_collection(g, tree, sources, seed=5, strict=True)
        assert len(result.delivered) == 2 * (g.num_nodes - 1)

    def test_exactly_once_delivery(self):
        g = path(8)
        tree = reference_bfs_tree(g, 0)
        sources = {7: [f"m{i}" for i in range(5)], 4: ["n0"]}
        result = run_collection(g, tree, sources, seed=2)
        payloads = [m.payload for m in result.delivered]
        assert sorted(payloads) == sorted(
            [f"m{i}" for i in range(5)] + ["n0"]
        )
        assert len(set(m.msg_id for m in result.delivered)) == 6


class TestSessionFactoryParameter:
    def test_constructor_injected_policy(self):
        """The official session_factory hook (not monkey-patching)."""
        import random as random_module

        from repro.baselines import aloha_session_factory

        slots = SlotStructure(decay_budget=4, level_classes=1)
        rng = random_module.Random(3)
        lane = TransportLane(
            node_id="me",
            level=0,
            slots=slots,
            rng=rng,
            channel=0,
            session_factory=aloha_session_factory(1.0, rng),
        )
        lane.enqueue(
            DataMessage(
                msg_id=("me", 0),
                origin="me",
                hop_sender="me",
                hop_dest="parent",
            )
        )
        # p=1.0 ALOHA transmits at every data opportunity of the phase.
        transmissions = sum(
            1
            for t in range(slots.phase_length)
            if lane.on_slot(t) is not None
        )
        assert transmissions == slots.decay_budget
