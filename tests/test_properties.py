"""Unit tests for graph property computations, cross-checked vs networkx."""

import random

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.graphs import (
    Graph,
    bfs_layers,
    bfs_levels,
    degree_histogram,
    diameter,
    eccentricity,
    gnp_connected,
    grid,
    is_connected,
    path,
    radius_and_center,
    random_geometric,
    require_connected,
    shortest_path,
    star,
)


def to_networkx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(graph.nodes)
    g.add_edges_from(graph.edges())
    return g


class TestBfsLevels:
    def test_path_levels(self):
        levels = bfs_levels(path(5), 0)
        assert levels == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_star_levels(self):
        levels = bfs_levels(star(5), 0)
        assert levels[0] == 0
        assert all(levels[v] == 1 for v in range(1, 5))

    def test_unknown_root(self):
        with pytest.raises(TopologyError):
            bfs_levels(path(3), 99)

    def test_layers_partition_nodes(self):
        g = grid(4, 4)
        layers = bfs_layers(g, 0)
        flattened = [v for layer in layers for v in layer]
        assert sorted(flattened) == list(g.nodes)

    def test_layers_match_levels(self):
        g = grid(3, 5)
        levels = bfs_levels(g, 7)
        for depth, layer in enumerate(bfs_layers(g, 7)):
            assert all(levels[v] == depth for v in layer)


class TestConnectivity:
    def test_connected(self):
        assert is_connected(path(4))

    def test_disconnected(self):
        g = Graph.from_edges([(0, 1)], nodes=[0, 1, 2])
        assert not is_connected(g)
        with pytest.raises(TopologyError):
            require_connected(g)

    def test_empty_graph_is_connected(self):
        assert is_connected(Graph({}))


class TestDistances:
    @pytest.mark.parametrize("seed", range(5))
    def test_diameter_matches_networkx(self, seed):
        g = gnp_connected(14, 0.25, random.Random(seed))
        assert diameter(g) == nx.diameter(to_networkx(g))

    @pytest.mark.parametrize("seed", range(3))
    def test_eccentricity_matches_networkx(self, seed):
        g = random_geometric(16, 0.45, random.Random(seed))
        ref = nx.eccentricity(to_networkx(g))
        for node in g.nodes:
            assert eccentricity(g, node) == ref[node]

    def test_diameter_of_single_node(self):
        assert diameter(path(1)) == 0

    def test_eccentricity_disconnected_raises(self):
        g = Graph.from_edges([(0, 1)], nodes=[0, 1, 2])
        with pytest.raises(TopologyError):
            eccentricity(g, 0)

    def test_radius_and_center(self):
        radius, center = radius_and_center(path(5))
        assert radius == 2
        assert center == 2

    def test_shortest_path_endpoints_and_length(self):
        g = grid(4, 4)
        sp = shortest_path(g, 0, 15)
        assert sp[0] == 0 and sp[-1] == 15
        assert len(sp) - 1 == bfs_levels(g, 0)[15]
        for u, v in zip(sp, sp[1:]):
            assert g.has_edge(u, v)

    def test_shortest_path_to_self(self):
        assert shortest_path(path(3), 1, 1) == [1]

    def test_shortest_path_unreachable(self):
        g = Graph.from_edges([(0, 1)], nodes=[0, 1, 2])
        with pytest.raises(TopologyError):
            shortest_path(g, 0, 2)


class TestDegreeHistogram:
    def test_star(self):
        assert degree_histogram(star(5)) == {4: 1, 1: 4}

    def test_sums_to_n(self):
        g = grid(3, 3)
        assert sum(degree_histogram(g).values()) == g.num_nodes
