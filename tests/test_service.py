"""Tests for the open-system service mode (repro.service).

Covers the streaming estimators against exact references, the
backlog-drift stability test on synthetic queues, the service loop's
constant-memory contract and oracle agreement, and E19/E20 determinism
under runner sharding.
"""

import math
import random
import tracemalloc

import pytest

from repro.analysis.stats import quantile
from repro.errors import ConfigurationError
from repro.graphs import layered_band, path, reference_bfs_tree
from repro.rng import derive_seed
from repro.runner import run_experiment
from repro.runner.defs import service_metrics, service_sources, sweep_metrics
from repro.service import (
    BacklogDriftDetector,
    P2Quantile,
    RateWindow,
    Welford,
    compare_with_oracle,
    measure_capacity,
    run_service,
    saturation_sweep,
    sweep_rates,
)
from repro.workloads import BernoulliArrivals, PoissonArrivals


# ----------------------------------------------------------------------
# Streaming estimators vs exact references
# ----------------------------------------------------------------------

class TestWelford:
    def test_matches_numpy_on_long_stream(self):
        numpy = pytest.importorskip("numpy")
        rng = random.Random(1)
        data = [rng.gauss(5.0, 2.5) for _ in range(20_000)]
        w = Welford()
        for x in data:
            w.add(x)
        assert w.count == len(data)
        assert w.mean == pytest.approx(float(numpy.mean(data)), rel=1e-9)
        assert w.variance == pytest.approx(
            float(numpy.var(data, ddof=1)), rel=1e-9
        )
        assert w.stddev == pytest.approx(
            float(numpy.std(data, ddof=1)), rel=1e-9
        )

    def test_empty_and_single(self):
        w = Welford()
        assert w.count == 0 and w.variance == 0.0
        w.add(3.0)
        assert w.mean == 3.0
        assert w.variance == 0.0

    def test_is_constant_size(self):
        w = Welford()
        for i in range(10_000):
            w.add(float(i))
        assert not hasattr(w, "__dict__")  # __slots__: no per-sample state


class TestP2Quantile:
    @pytest.mark.parametrize("p", [0.5, 0.9, 0.99])
    def test_tracks_exact_quantile_uniform(self, p):
        rng = random.Random(7)
        data = [rng.random() for _ in range(50_000)]
        sketch = P2Quantile(p)
        for x in data:
            sketch.add(x)
        exact = quantile(data, p)
        assert sketch.value == pytest.approx(exact, abs=0.02)

    def test_tracks_exact_quantile_exponential(self):
        rng = random.Random(8)
        data = [rng.expovariate(0.5) for _ in range(50_000)]
        sketch = P2Quantile(0.9)
        for x in data:
            sketch.add(x)
        exact = quantile(data, 0.9)
        # Heavier tail: relative tolerance on a larger magnitude.
        assert sketch.value == pytest.approx(exact, rel=0.05)

    def test_small_samples_are_exact(self):
        sketch = P2Quantile(0.5)
        for x in (9.0, 1.0, 5.0):
            sketch.add(x)
        assert sketch.value == quantile([9.0, 1.0, 5.0], 0.5)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    def test_validates_p(self):
        with pytest.raises(ConfigurationError):
            P2Quantile(0.0)
        with pytest.raises(ConfigurationError):
            P2Quantile(1.0)


class TestRateWindow:
    def test_windowed_mean_rate(self):
        w = RateWindow(10)
        for slot in (0, 3, 7, 12, 25):
            w.record(slot)
        w.finish(30)
        # 3 windows: [0,10)=3 events, [10,20)=1, [20,30)=1.
        assert w.windows == 3
        assert w.mean_rate == pytest.approx(5 / 30)
        assert w.max_rate == pytest.approx(0.3)
        assert w.min_rate == pytest.approx(0.1)

    def test_leading_empty_windows_counted(self):
        w = RateWindow(5)
        w.record(12)
        w.finish(15)
        # Windows [0,5) and [5,10) saw nothing but still count.
        assert w.windows == 3
        assert w.mean_rate == pytest.approx(1 / 15)
        assert w.min_rate == 0.0


# ----------------------------------------------------------------------
# Backlog-drift stability detection on synthetic queues
# ----------------------------------------------------------------------

class TestBacklogDrift:
    def test_stable_bounded_noise(self):
        rng = random.Random(3)
        det = BacklogDriftDetector(0, 10_000)
        for slot in range(0, 10_000, 10):
            det.observe(slot, max(0, int(rng.gauss(5.0, 2.0))))
        verdict = det.verdict()
        assert verdict.stable
        assert abs(verdict.tail_mean - verdict.head_mean) < 2.0

    def test_unstable_linear_growth(self):
        det = BacklogDriftDetector(0, 10_000)
        for slot in range(0, 10_000, 10):
            det.observe(slot, 1 + slot // 200)  # drifts up ~50 over the run
        verdict = det.verdict()
        assert not verdict.stable
        assert verdict.tail_mean > verdict.head_mean

    def test_stable_high_but_flat_queue(self):
        """A loaded-but-stationary queue (high mean, no drift) is stable."""
        rng = random.Random(4)
        det = BacklogDriftDetector(0, 10_000)
        for slot in range(0, 10_000, 10):
            det.observe(slot, max(0, int(rng.gauss(40.0, 6.0))))
        assert det.verdict().stable

    def test_transient_spike_does_not_flag(self):
        """A mid-run burst that drains again is not instability."""
        det = BacklogDriftDetector(0, 10_000)
        for slot in range(0, 10_000, 10):
            spike = 30 if 4_000 <= slot < 5_000 else 2
            det.observe(slot, spike)
        assert det.verdict().stable


# ----------------------------------------------------------------------
# The service loop: KPIs, oracle agreement, constant memory
# ----------------------------------------------------------------------

def _path_service(phases, rate=0.3, seed=7, **kwargs):
    graph = path(12)
    tree = reference_bfs_tree(graph, 0)
    from repro.core.slots import SlotStructure, decay_budget

    phase_length = SlotStructure(
        decay_budget(graph.max_degree()), 3, True
    ).phase_length
    arrivals = BernoulliArrivals(
        [11], rate, phase_length, seed=derive_seed(seed, "arrivals")
    )
    return graph, tree, run_service(
        graph, tree, arrivals, seed=seed,
        horizon_slots=phases * phase_length, **kwargs
    )


class TestServiceLoop:
    def test_kpis_track_tandem_oracle_on_path(self):
        """Single-source path at λ=0.3: sojourn and queue within the
        documented 35% tolerance of the Geo/Geo/1 tandem closed forms."""
        graph, tree, kpis = _path_service(1200)
        capacity = measure_capacity(graph, tree, [11], seed=7, phases=200)
        oracle = compare_with_oracle(kpis, capacity)
        assert kpis.stable
        assert 0.65 <= oracle.sojourn_ratio <= 1.35
        assert 0.65 <= oracle.queue_ratio <= 1.35

    def test_poisson_and_bernoulli_agree_at_same_load(self):
        graph = path(10)
        tree = reference_bfs_tree(graph, 0)
        from repro.core.slots import SlotStructure, decay_budget

        phase_length = SlotStructure(
            decay_budget(graph.max_degree()), 3, True
        ).phase_length
        kpis = {}
        for name, arrivals in (
            ("bernoulli", BernoulliArrivals([9], 0.3, phase_length, seed=5)),
            (
                "poisson",
                PoissonArrivals.per_phase_rate([9], 0.3, phase_length, seed=5),
            ),
        ):
            kpis[name] = run_service(
                graph, tree, arrivals, seed=9,
                horizon_slots=900 * phase_length,
            )
        assert kpis["bernoulli"].stable and kpis["poisson"].stable
        assert kpis["bernoulli"].sojourn_phases == pytest.approx(
            kpis["poisson"].sojourn_phases, rel=0.25
        )

    def test_in_flight_tracks_backlog_not_horizon(self):
        _, _, short = _path_service(300)
        _, _, long = _path_service(1500)
        assert long.submitted > 3 * short.submitted
        # The only per-message state is the in-flight map, and its peak
        # does not grow with the horizon in the stable regime.
        assert long.in_flight_peak <= 2 * short.in_flight_peak + 4

    def test_constant_memory_over_horizon(self):
        """Peak allocations are flat in the horizon (the acceptance
        criterion): tripling the horizon adds only noise-level memory."""

        def peak(phases):
            tracemalloc.start()
            try:
                _path_service(phases)
                _, peak_bytes = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            return peak_bytes

        peak(100)  # warm caches so neither measurement pays import costs
        small = peak(300)
        large = peak(900)
        assert large < 1.3 * small

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _path_service(0)
        with pytest.raises(ConfigurationError):
            _path_service(10, warmup_fraction=1.0)

    def test_delivery_conservation(self):
        _, _, kpis = _path_service(800)
        assert kpis.delivered <= kpis.submitted
        assert kpis.delivered + kpis.final_backlog >= kpis.submitted - 1
        assert kpis.measured_delivered <= kpis.delivered


# ----------------------------------------------------------------------
# Saturation sweeps
# ----------------------------------------------------------------------

class TestSaturationSweep:
    def test_knee_brackets_analytic_critical_rate(self):
        graph = layered_band(4, 3)
        tree = reference_bfs_tree(graph, 0)
        sources = [n for n in tree.nodes if tree.level[n] == tree.depth]
        result = saturation_sweep(
            graph, tree, sources, seed=7, points=5,
            phases_per_point=400, capacity_phases=200,
        )
        assert result.knee_found
        assert result.knee_low < result.knee_high
        assert result.knee_brackets_critical()
        # Below the knee the measured points are stable, above unstable.
        stables = [p.stable for p in result.points]
        assert stables == sorted(stables, reverse=True)

    def test_sweep_rates_span_and_clamp(self):
        rates = sweep_rates(0.8, 5)
        assert rates[0] == pytest.approx(0.32)
        assert rates[-1] == 1.0  # 1.28 clamped to the Bernoulli maximum
        assert rates == sorted(rates)
        with pytest.raises(ConfigurationError):
            sweep_rates(0.5, 1)

    def test_empty_sources_rejected(self):
        graph = path(4)
        tree = reference_bfs_tree(graph, 0)
        with pytest.raises(ConfigurationError):
            saturation_sweep(graph, tree, [], seed=0)


# ----------------------------------------------------------------------
# E19/E20 runner integration
# ----------------------------------------------------------------------

class TestServiceExperiments:
    def test_service_sources_modes(self):
        _, tree, tail = service_sources("band-4x3", "tail", 7)
        assert len(tail) == 1 and tree.level[tail[0]] == tree.depth
        _, tree, bottom = service_sources("band-4x3", "bottom", 7)
        assert len(bottom) == 3
        _, tree, everyone = service_sources("band-4x3", "all", 7)
        assert len(everyone) == len(tree.nodes) - 1
        with pytest.raises(ConfigurationError):
            service_sources("band-4x3", "nowhere", 7)

    def test_e19_task_metrics_are_flat_scalars(self):
        metrics = service_metrics("path-8", "tail", "bernoulli", 0.25, 200, 7)
        assert metrics["stable"] is True
        assert metrics["sojourn_p90_phases"] >= metrics["sojourn_p50_phases"]
        for value in metrics.values():
            assert isinstance(value, (int, float, bool))

    def test_e20_task_detects_knee(self):
        metrics = sweep_metrics("band-4x3", "bottom", 3, 220, 7)
        assert metrics["knee_found"]
        assert metrics["knee_brackets_critical"]

    def test_e19_sharded_summaries_bit_identical(self):
        summaries = {}
        for workers in (0, 2):
            report = run_experiment(
                "E19", seed=11, replications=2, workers=workers, quick=True,
            )
            summaries[workers] = report.summary_table()
            assert report.executed == len(report.outcomes)
        assert summaries[0] == summaries[2]

    def test_e20_sharded_summaries_bit_identical(self):
        summaries = {}
        for workers in (0, 2):
            report = run_experiment(
                "E20", seed=5, replications=2, workers=workers, quick=True,
            )
            summaries[workers] = report.summary_table()
        assert summaries[0] == summaries[2]
