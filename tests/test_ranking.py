"""Tests for the ranking application (§7)."""

import random

import pytest

from repro.core import run_ranking
from repro.errors import ConfigurationError
from repro.graphs import (
    Graph,
    grid,
    path,
    random_geometric,
    reference_bfs_tree,
    star,
)


def prepared(graph, root):
    tree = reference_bfs_tree(graph, root)
    tree.assign_dfs_intervals()
    return tree


def expected_ranks(graph):
    return {node: i + 1 for i, node in enumerate(sorted(graph.nodes))}


class TestRanking:
    @pytest.mark.parametrize(
        "graph_factory,root",
        [
            (lambda: path(6), 0),
            (lambda: star(7), 0),
            (lambda: grid(3, 3), 4),
            (lambda: random_geometric(14, 0.45, random.Random(2)), 5),
        ],
        ids=["path", "star", "grid-midroot", "rgg"],
    )
    def test_ranks_are_order_isomorphic(self, graph_factory, root):
        graph = graph_factory()
        tree = prepared(graph, root)
        result = run_ranking(graph, tree, seed=8)
        assert result.ranks == expected_ranks(graph)

    def test_non_contiguous_ids(self):
        """Ranks compress arbitrary distinct IDs to 1..n."""
        g = Graph.from_edges([(10, 50), (50, 7), (7, 42)])
        tree = reference_bfs_tree(g, 50)
        tree.assign_dfs_intervals()
        result = run_ranking(g, tree, seed=1)
        assert result.ranks == {7: 1, 10: 2, 42: 3, 50: 4}

    def test_collect_precedes_distribution(self):
        graph = grid(3, 3)
        tree = prepared(graph, 0)
        result = run_ranking(graph, tree, seed=3)
        assert 0 < result.collect_slots <= result.slots

    def test_requires_prepared_tree(self):
        graph = path(4)
        tree = reference_bfs_tree(graph, 0)
        with pytest.raises(ConfigurationError):
            run_ranking(graph, tree, seed=0)

    def test_deterministic_given_seed(self):
        graph = star(6)
        tree = prepared(graph, 0)
        assert (
            run_ranking(graph, tree, seed=5).slots
            == run_ranking(graph, tree, seed=5).slots
        )
