"""The TCP coordinator: protocol ops, recovery, exactly-once, outbox.

Runs a real :class:`CoordServer` on a loopback socket (in a thread) and
drives it with real :class:`CoordClient`/:class:`CoordWorker` instances
— injected task functions, no subprocesses (the chaos harness covers
the multi-process scenario with network faults and SIGKILL).  The tests
state the backend's contracts directly: idempotent submit/claim/commit,
journal write-through recovery (including restored in-flight leases),
lease expiry folding into the quarantine budget, server-side cache
replay, the stranded-outcome outbox, and a server that survives raw
garbage on its port.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.runner import (
    CoordClient,
    CoordServer,
    CoordWorker,
    CoordinatorUnreachable,
    FaultPolicy,
    Outbox,
    coord_report,
    coord_status,
    submit_tasks,
    task_grid,
)
from repro.runner.cache import ResultCache
from repro.runner.client import parse_address
from repro.runner.coord import JOURNAL_NAME, format_coord_status
from repro.runner.telemetry import _read_jsonl
from repro.runner.wire import FrameDecoder, encode_frame

VERSION = "vtest"


def _grid(n: int = 4, exp_id: str = "EC"):
    return task_grid(exp_id, [{"idx": i} for i in range(n)], 1, seed=11)


def _value(spec) -> dict:
    return {"value": spec.seed % 97, "idx": spec.params["idx"]}


def _journal(root: Path, kind: str):
    return [
        e
        for e in _read_jsonl(root / JOURNAL_NAME, strict=False)
        if e.get("kind") == kind
    ]


class _Server:
    """A coordinator on a loopback port, serving from a thread."""

    def __init__(self, root, **kwargs):
        kwargs.setdefault("ttl", 10.0)
        kwargs.setdefault("tick", 0.05)
        self.server = CoordServer(root, **kwargs)
        self.root = Path(root)
        self.address = self.server.start()
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()

    def stop(self):
        if not self.thread.is_alive():
            return
        client = CoordClient(self.root, timeout=2.0, offline_budget=5.0)
        try:
            client.request({"op": "stop"})
        except (CoordinatorUnreachable, OSError):
            pass
        finally:
            client.close()
        self.thread.join(timeout=5.0)
        self.server.close()
        assert not self.thread.is_alive()


@pytest.fixture
def served(tmp_path):
    box = _Server(tmp_path / "coord")
    try:
        yield box
    finally:
        box.stop()


@pytest.fixture
def client(served):
    handle = CoordClient(served.root, timeout=2.0, offline_budget=10.0)
    try:
        yield handle
    finally:
        handle.close()


# ----------------------------------------------------------------------
# Protocol ops
# ----------------------------------------------------------------------


def test_parse_address():
    assert parse_address("127.0.0.1:9100") == ("127.0.0.1", 9100)
    assert parse_address("host.example:80") == ("host.example", 80)
    with pytest.raises(ConfigurationError):
        parse_address("no-port")
    with pytest.raises(ConfigurationError):
        parse_address("host:notanumber")


def test_ping_and_unknown_op(client):
    assert client.request({"op": "ping"})["ok"] is True
    bad = client.request({"op": "no_such_op"})
    assert bad["ok"] is False and "unknown op" in bad["error"]


def test_submit_is_idempotent(served, client):
    tasks = _grid(4)
    assert submit_tasks(client, tasks, version=VERSION) == 4
    assert submit_tasks(client, tasks, version=VERSION) == 0
    assert len(_journal(served.root, "task")) == 4


def test_submit_rejects_mixed_experiments(client):
    tasks = _grid(2, "EA") + _grid(2, "EB")
    with pytest.raises(ConfigurationError):
        submit_tasks(client, tasks, version=VERSION)


def test_claim_is_idempotent_while_held(served, client):
    submit_tasks(client, _grid(3), version=VERSION)
    first = client.request({"op": "claim", "host": "h1"})
    again = client.request({"op": "claim", "host": "h1"})
    # A resent claim (lost response) re-grants the SAME task, so a
    # flaky link cannot make one host hold two leases.
    assert first["task"]["key"] == again["task"]["key"]
    assert len(_journal(served.root, "lease")) == 1
    other = client.request({"op": "claim", "host": "h2"})
    assert other["task"]["key"] != first["task"]["key"]


def test_commit_is_deduplicated(served, client):
    submit_tasks(client, _grid(1), version=VERSION)
    grant = client.request({"op": "claim", "host": "h1"})
    key = grant["task"]["key"]
    record = {"spec": grant["task"]["spec"], "metrics": {"v": 1},
              "wall_time": 0.0, "version": VERSION}
    first = client.request(
        {"op": "commit", "host": "h1", "key": key, "record": record}
    )
    assert not first.get("duplicate")
    second = client.request(
        {"op": "commit", "host": "h1", "key": key, "record": record}
    )
    assert second["duplicate"] is True
    assert len(_journal(served.root, "outcome")) == 1


def test_release_returns_task_to_queue_without_expiry(served, client):
    submit_tasks(client, _grid(1), version=VERSION)
    key = client.request({"op": "claim", "host": "h1"})["task"]["key"]
    assert client.request(
        {"op": "release", "host": "h1", "key": key}
    )["released"] is True
    # Released is not expired: no failure is counted against the task.
    assert _journal(served.root, "lease_expired") == []
    regrant = client.request({"op": "claim", "host": "h2"})
    assert regrant["task"]["key"] == key
    assert regrant["steal_count"] == 0


def test_heartbeat_reports_lost_lease(served, client):
    submit_tasks(client, _grid(1), version=VERSION)
    key = client.request({"op": "claim", "host": "h1"})["task"]["key"]
    assert client.request(
        {"op": "heartbeat", "host": "h1", "key": key}
    )["held"] is True
    assert client.request(
        {"op": "heartbeat", "host": "h2", "key": key}
    )["held"] is False


# ----------------------------------------------------------------------
# Draining workers
# ----------------------------------------------------------------------


def test_workers_drain_exactly_once(served, client):
    tasks = _grid(8)
    submit_tasks(client, tasks, version=VERSION)
    reports = []

    def drain(name):
        worker = CoordWorker(
            served.root, host=name, run_fn=_value,
            poll_interval=0.05, progress=False,
        )
        reports.append(worker.run())

    threads = [
        threading.Thread(target=drain, args=(f"w{i}",)) for i in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert sum(r.executed for r in reports) == 8
    assert sum(r.quarantined for r in reports) == 0
    merged = coord_report(served.root)
    assert len(merged.outcomes) == 8
    assert {o.key for o in merged.outcomes} == {
        s.key(VERSION) for s in tasks
    }
    by_key = {s.key(VERSION): s for s in tasks}
    for outcome in merged.outcomes:
        assert dict(outcome.metrics) == _value(by_key[outcome.key])


def test_failed_task_retries_then_quarantines(served, client):
    submit_tasks(client, _grid(1), version=VERSION)

    def explode(spec):
        raise RuntimeError("injected failure")

    worker = CoordWorker(
        served.root, host="w0", run_fn=explode,
        policy=FaultPolicy(max_retries=1, backoff_base=0.01),
        poll_interval=0.05, progress=False,
    )
    report = worker.run()
    assert report.quarantined == 1 and report.retries == 1
    merged = coord_report(served.root)
    assert len(merged.quarantined) == 1
    assert merged.quarantined[0].category == "error"
    status = coord_status(served.root)
    assert status["quarantined"] == 1 and status["pending"] == 0


def test_server_side_cache_replay(served, client):
    tasks = _grid(2)
    submit_tasks(client, tasks, version=VERSION)
    # One key was already committed by an earlier run: the coordinator
    # replays it from its cache at claim time, no worker executes it.
    key = tasks[0].key(VERSION)
    ResultCache(served.root / "results", fsync=True).put(
        key,
        {"spec": tasks[0].to_record(), "metrics": {"v": 9},
         "wall_time": 0.0, "version": VERSION},
    )
    worker = CoordWorker(
        served.root, host="w0", run_fn=_value,
        poll_interval=0.05, progress=False,
    )
    report = worker.run()
    assert report.executed == 1
    assert report.cache_hits == 1
    replays = [
        e for e in _journal(served.root, "outcome") if e.get("cached")
    ]
    assert [e["key"] for e in replays] == [key]


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------


def test_journal_recovery_restores_done_and_leases(tmp_path):
    root = tmp_path / "coord"
    box = _Server(root)
    client = CoordClient(root, timeout=2.0, offline_budget=10.0)
    tasks = _grid(3)
    submit_tasks(client, tasks, version=VERSION)
    grant = client.request({"op": "claim", "host": "h1"})
    held = grant["task"]["key"]
    done_key = client.request({"op": "claim", "host": "h2"})["task"]["key"]
    client.request(
        {"op": "commit", "host": "h2", "key": done_key,
         "record": {"spec": {}, "metrics": {"v": 1}, "wall_time": 0.0,
                    "version": VERSION}}
    )
    client.close()
    box.stop()

    revived = _Server(root)
    try:
        # The committed task stays done, the in-flight lease is restored
        # with a fresh TTL, the third task is still pending.
        assert revived.server.recovered_leases == 1
        assert set(revived.server.state.done) == {done_key}
        assert len(revived.server.state.tasks) == 2
        client = CoordClient(root, timeout=2.0, offline_budget=10.0)
        regrant = client.request({"op": "claim", "host": "h1"})
        assert regrant["task"]["key"] == held
        client.close()
    finally:
        revived.stop()


def test_lease_expiry_requeues_then_quarantines(tmp_path):
    root = tmp_path / "coord"
    box = _Server(root, ttl=0.25, policy=FaultPolicy(max_retries=1))
    client = CoordClient(root, timeout=2.0, offline_budget=10.0)
    try:
        submit_tasks(client, _grid(1), version=VERSION)
        key = client.request({"op": "claim", "host": "dead1"})["task"]["key"]
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and not _journal(
            root, "lease_expired"
        ):
            time.sleep(0.05)
        # First expiry: the task goes back in the queue with steals=1.
        regrant = client.request({"op": "claim", "host": "dead2"})
        assert regrant["task"]["key"] == key
        assert regrant["steal_count"] == 1
        while time.monotonic() < deadline and not _journal(
            root, "quarantine"
        ):
            time.sleep(0.05)
        # Second expiry exceeds max_retries=1: quarantined as a crash.
        records = _journal(root, "quarantine")
        assert len(records) == 1
        assert records[0]["record"]["category"] == "crash"
        status = coord_status(root)
        assert status["quarantined"] == 1 and status["pending"] == 0
    finally:
        client.close()
        box.stop()


# ----------------------------------------------------------------------
# Outbox: graceful degradation and flush
# ----------------------------------------------------------------------


def test_outbox_spool_ack_pending(tmp_path):
    path = tmp_path / "outbox" / "w0.jsonl"
    box = Outbox(path)
    box.spool("k1", {"metrics": {"v": 1}})
    box.spool("k2", {"metrics": {"v": 2}})
    box.ack("k1")
    box.close()
    pending = Outbox.pending_in(path)
    assert set(pending) == {"k2"}
    assert pending["k2"]["metrics"] == {"v": 2}


def test_worker_exits_cleanly_when_coordinator_unreachable(tmp_path):
    dead = ("127.0.0.1", 1)  # nothing listens on port 1
    worker = CoordWorker(
        tmp_path, host="w0", address=dead, run_fn=_value,
        request_timeout=0.2, offline_budget=0.5,
        poll_interval=0.05, progress=False,
    )
    report = worker.run()  # must return, not raise or hang
    assert report.executed == 0


def test_stranded_outbox_is_flushed_by_next_worker(served, client):
    tasks = _grid(2)
    submit_tasks(client, tasks, version=VERSION)
    # A predecessor computed one outcome but died before the commit ack:
    # its spool file (different host name) holds the record.
    key = tasks[0].key(VERSION)
    stranded = Outbox(served.root / "outbox" / "deadhost-1-aa.jsonl")
    record = {"spec": tasks[0].to_record(), "metrics": _value(tasks[0]),
              "wall_time": 0.0, "version": VERSION}
    stranded.spool(key, record)
    stranded.close()

    worker = CoordWorker(
        served.root, host="w0", run_fn=_value,
        poll_interval=0.05, progress=False,
    )
    report = worker.run()
    # The flush committed the stranded key; the claim loop then replays
    # it from the server cache instead of executing it again.
    assert report.executed == 1
    merged = coord_report(served.root)
    assert len(merged.outcomes) == 2
    assert Outbox.pending_in(
        served.root / "outbox" / "deadhost-1-aa.jsonl"
    ) == {}


# ----------------------------------------------------------------------
# Robustness and status
# ----------------------------------------------------------------------


def test_server_survives_garbage_then_answers(served):
    host, port = served.address
    with socket.create_connection((host, port), timeout=2.0) as sock:
        sock.sendall(b"\x00\xffGET / HTTP/1.0\r\n\r\n" * 3)
        sock.sendall(encode_frame({"op": "ping", "rid": "r1"}))
        sock.settimeout(2.0)
        decoder = FrameDecoder()
        frames = []
        while not frames:
            frames = decoder.feed(sock.recv(65536))
    assert frames[0]["rid"] == "r1" and frames[0]["ok"] is True


def test_server_survives_oversized_header(served):
    host, port = served.address
    from repro.runner.wire import MAGIC

    with socket.create_connection((host, port), timeout=2.0) as sock:
        sock.sendall(MAGIC + (2**31).to_bytes(4, "big"))
        sock.sendall(encode_frame({"op": "ping", "rid": "r2"}))
        sock.settimeout(2.0)
        decoder = FrameDecoder()
        frames = []
        while not frames:
            frames = decoder.feed(sock.recv(65536))
    assert frames[0]["rid"] == "r2"


def test_client_discards_mismatched_rids(served, client):
    # Duplicated responses from an earlier (resent) request must not be
    # taken as the answer to a later one: rid pairing filters them.
    # Exercised indirectly: two sequential requests over one connection
    # get the right answers even after the server echoed earlier rids.
    a = client.request({"op": "ping"})
    b = client.request({"op": "status"})
    assert a["ok"] and "total" in b


def test_status_offline_fallback_and_format(tmp_path):
    root = tmp_path / "coord"
    box = _Server(root)
    client = CoordClient(root, timeout=2.0, offline_budget=10.0)
    submit_tasks(client, _grid(2), version=VERSION)
    live = coord_status(root)
    assert live["reachable"] is True and live["pending"] == 2
    client.close()
    box.stop()
    offline = coord_status(root, timeout=0.5)
    assert offline["reachable"] is False
    assert offline["pending"] == 2 and offline["total"] == 2
    text = format_coord_status(offline)
    assert "offline (journal)" in text
    assert "2" in text


def test_worker_requires_outbox_or_root():
    with pytest.raises(ConfigurationError):
        CoordWorker(None, address=("127.0.0.1", 1), run_fn=_value)
