"""Tests for time-division multiplexing (§1.4's single-transceiver option)."""

import random

import pytest

from repro.core import run_point_to_point
from repro.core.point_to_point import PointToPointProcess
from repro.core.broadcast import BroadcastProcess, superphase_invocations
from repro.core.slots import SlotStructure, decay_budget
from repro.core.tree import tree_info_from_bfs_tree
from repro.errors import ConfigurationError
from repro.graphs import grid, path, reference_bfs_tree, star
from repro.radio import (
    Process,
    ScriptedProcess,
    TimeDivisionProcess,
    Transmission,
    logical_slots,
    multiplex_network,
)
from repro.rng import RngFactory


class TestAdapterSemantics:
    def test_sub_slot_layout(self):
        """Channel-c traffic of logical slot s occupies physical 2s+c."""
        inner0 = ScriptedProcess(
            0,
            {
                0: [Transmission("up", channel=0), Transmission("dn", channel=1)],
                1: Transmission("later", channel=1),
            },
        )
        inner1 = ScriptedProcess(1, {})
        net = multiplex_network(
            path(2),
            {0: lambda n: inner0, 1: lambda n: inner1}.__getitem__(0)
            if False
            else (lambda n: inner0 if n == 0 else inner1),
            logical_channels=2,
        )
        net.run(4)
        # inner1 should have heard: (slot 0, ch 0, "up"), (0, 1, "dn"),
        # (1, 1, "later") — in logical coordinates.
        assert inner1.heard == [
            (0, 0, "up"),
            (0, 1, "dn"),
            (1, 1, "later"),
        ]
        assert logical_slots(net, 2) == 2

    def test_excess_logical_channel_rejected(self):
        inner = ScriptedProcess(0, {0: Transmission("x", channel=3)})
        wrapped = TimeDivisionProcess(inner, logical_channels=2)
        with pytest.raises(ConfigurationError):
            wrapped.on_slot(0)

    def test_double_transmit_same_logical_channel_rejected(self):
        inner = ScriptedProcess(
            0, {0: [Transmission("a", channel=0), Transmission("b", channel=0)]}
        )
        wrapped = TimeDivisionProcess(inner, logical_channels=2)
        with pytest.raises(ConfigurationError):
            wrapped.on_slot(0)

    def test_invalid_channel_count(self):
        with pytest.raises(ConfigurationError):
            TimeDivisionProcess(ScriptedProcess(0), logical_channels=0)

    def test_slot_end_forwarded_once_per_logical_slot(self):
        ends = []

        class EndCounter(Process):
            def on_slot_end(self, slot):
                ends.append(slot)

        net = multiplex_network(
            path(2), lambda n: EndCounter(n), logical_channels=2
        )
        net.run(6)
        # Two stations × 3 logical slots.
        assert sorted(ends) == [0, 0, 1, 1, 2, 2]

    def test_is_done_delegates(self):
        class Done(Process):
            def is_done(self):
                return True

        assert TimeDivisionProcess(Done(0), 2).is_done()


def build_p2p_process(graph, tree, seed):
    factory = RngFactory(seed)
    slot_structure = SlotStructure(
        decay_budget(graph.max_degree()), level_classes=3, with_acks=True
    )
    infos = tree_info_from_bfs_tree(tree)

    def make(node):
        return PointToPointProcess(
            infos[node], slot_structure, factory.for_node(node)
        )

    return make


class TestProtocolsOverOneTransceiver:
    def test_p2p_runs_multiplexed(self):
        """The two-channel point-to-point stack on a single channel."""
        graph = grid(3, 3)
        tree = reference_bfs_tree(graph, 0)
        tree.assign_dfs_intervals()
        make = build_p2p_process(graph, tree, seed=4)
        inners = {}

        def factory(node):
            inners[node] = make(node)
            return inners[node]

        net = multiplex_network(graph, factory, logical_channels=2)
        inners[8].submit(tree.dfs_number[1], "across")
        inners[0].submit(tree.dfs_number[6], "down")
        net.run(
            400_000,
            until=lambda n: len(inners[1].delivered) >= 1
            and len(inners[6].delivered) >= 1,
        )
        assert inners[1].delivered[0].payload == "across"
        assert inners[6].delivered[0].payload == "down"

    def test_multiplexed_costs_twice_the_logical_slots(self):
        """Same seed, same workload: the multiplexed run consumes ~2×
        physical slots (identical logical behaviour)."""
        graph = path(6)
        tree = reference_bfs_tree(graph, 0)
        tree.assign_dfs_intervals()
        batch = [(5, 0, "m1"), (0, 5, "m2")]
        two_channel = run_point_to_point(graph, tree, batch, seed=9)

        make = build_p2p_process(graph, tree, seed=9)
        inners = {}

        def factory(node):
            inners[node] = make(node)
            return inners[node]

        net = multiplex_network(graph, factory, logical_channels=2)
        inners[5].submit(tree.dfs_number[0], "m1")
        inners[0].submit(tree.dfs_number[5], "m2")
        net.run(
            400_000,
            until=lambda n: len(inners[0].delivered) >= 1
            and len(inners[5].delivered) >= 1
            and all(p.is_done() for p in inners.values()),
        )
        # Identical coin streams → identical logical schedule → exactly
        # twice the physical slots (up to the 1-sub-slot rounding).
        assert abs(net.slot - 2 * two_channel.slots) <= 2

    def test_broadcast_runs_multiplexed(self):
        graph = star(6)
        tree = reference_bfs_tree(graph, 0)
        infos = tree_info_from_bfs_tree(tree)
        factory_rng = RngFactory(3)
        budget = decay_budget(graph.max_degree())
        up_slots = SlotStructure(budget, 3, True)
        dist_slots = SlotStructure(budget, 3, False)
        inners = {}

        def factory(node):
            inners[node] = BroadcastProcess(
                infos[node],
                up_slots,
                dist_slots,
                superphase_invocations(graph.num_nodes),
                factory_rng.for_node(node),
            )
            return inners[node]

        net = multiplex_network(graph, factory, logical_channels=2)
        inners[2].submit("multiplexed alert")
        net.run(
            600_000,
            until=lambda n: all(p.has_prefix(1) for p in inners.values()),
            check_every=8,
        )
        for process in inners.values():
            assert process.received[0].payload == "multiplexed alert"


class TestThreeChannelMultiplex:
    def test_three_logical_channels(self):
        """C=3: logical channel c of slot s occupies physical 3s+c."""
        inner0 = ScriptedProcess(
            0,
            {
                0: [
                    Transmission("a", channel=0),
                    Transmission("b", channel=2),
                ],
                1: Transmission("c", channel=1),
            },
        )
        inner1 = ScriptedProcess(1, {})
        net = multiplex_network(
            path(2),
            lambda n: inner0 if n == 0 else inner1,
            logical_channels=3,
        )
        net.run(6)
        assert inner1.heard == [(0, 0, "a"), (0, 2, "b"), (1, 1, "c")]

    def test_multiplexed_with_failures(self):
        """Crashes interact sanely with the adapter: a down station's
        sub-slots all go silent."""
        from repro.radio import PermanentCrashes, RadioNetwork

        inner0 = ScriptedProcess(
            0, {s: Transmission("x", channel=0) for s in range(4)}
        )
        inner1 = ScriptedProcess(1, {})
        net = RadioNetwork(path(2), failures=PermanentCrashes({0}))
        net.attach(TimeDivisionProcess(inner0, 2))
        net.attach(TimeDivisionProcess(inner1, 2))
        net.run(8)
        assert inner1.heard == []
