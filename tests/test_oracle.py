"""Tests for the trace-verification oracle."""

import random

import pytest

from repro.core import DataMessage, SlotStructure
from repro.core.collection import build_collection_network
from repro.core.messages import AckMessage
from repro.graphs import (
    layered_band,
    random_geometric,
    reference_bfs_tree,
    star,
)
from repro.radio import (
    EventTrace,
    audit_collection_trace,
    check_ack_determinism,
    check_exactly_once,
    check_level_classes,
    check_slot_discipline,
)
from repro.radio.trace import DeliverEvent, TransmitEvent


def traced_collection(graph, sources, seed, capture=False):
    tree = reference_bfs_tree(graph, 0)
    network, processes, slots = build_collection_network(
        graph, tree, sources, seed, strict=not capture
    )
    trace = EventTrace()
    if capture:
        from repro.radio import RadioNetwork

        network = RadioNetwork(
            graph,
            num_channels=1,
            trace=trace,
            capture_effect=True,
            capture_seed=seed,
        )
        for process in processes.values():
            network.attach(process)
    else:
        network.trace = trace
    total = sum(len(v) for v in sources.values())
    root = processes[tree.root]
    network.run(
        500_000,
        until=lambda n: len(root.delivered) >= total
        and all(p.is_done() for p in processes.values()),
    )
    return trace, slots, tree


class TestCleanRunsPassAudit:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: star(9),
            lambda: layered_band(3, 4),
            lambda: random_geometric(20, 0.4, random.Random(4)),
        ],
        ids=["star", "band", "rgg"],
    )
    def test_full_audit_clean(self, graph_factory):
        graph = graph_factory()
        sources = {n: ["a", "b"] for n in list(graph.nodes)[1:]}
        trace, slots, tree = traced_collection(graph, sources, seed=2)
        violations = audit_collection_trace(
            trace, slots, tree.level, channel=0
        )
        assert violations == []


class TestViolationsAreDetected:
    def test_capture_model_fails_the_audit(self):
        """Under §8 remark (3) semantics, Thm 3.1 violations must be
        *found* by the oracle (a negative control for the checker)."""
        from repro.graphs import BFSTree, Graph

        graph = Graph.from_edges(
            [(0, 1), (0, 2), (1, 3), (2, 4), (3, 2), (4, 1)]
        )
        tree = BFSTree(
            root=0,
            parent={0: 0, 1: 0, 2: 0, 3: 1, 4: 2},
            level={0: 0, 1: 1, 2: 1, 3: 2, 4: 2},
        )
        sources = {3: ["x"] * 4, 4: ["y"] * 4}
        found_violation = False
        for seed in range(10):
            network, processes, slots = build_collection_network(
                graph, tree, sources, seed=seed, strict=False
            )
            from repro.radio import RadioNetwork

            trace = EventTrace()
            capture_net = RadioNetwork(
                graph,
                num_channels=1,
                trace=trace,
                capture_effect=True,
                capture_seed=seed,
            )
            for process in processes.values():
                capture_net.attach(process)
            root = processes[0]
            capture_net.run(
                400_000,
                until=lambda n: len(root.delivered) >= 8
                and all(p.is_done() for p in processes.values()),
            )
            if check_ack_determinism(trace) or check_exactly_once(trace):
                found_violation = True
                break
        assert found_violation

    def test_missing_ack_flagged(self):
        """Hand-built trace: a designated delivery without its ack."""
        trace = EventTrace()
        message = DataMessage(
            msg_id=(5, 0), origin=5, hop_sender=5, hop_dest=4
        )
        trace.record(DeliverEvent(10, 0, 4, 5, message))
        violations = check_ack_determinism(trace)
        assert len(violations) == 1
        assert "never" in violations[0]

    def test_paired_ack_accepted(self):
        trace = EventTrace()
        message = DataMessage(
            msg_id=(5, 0), origin=5, hop_sender=5, hop_dest=4
        )
        trace.record(DeliverEvent(10, 0, 4, 5, message))
        trace.record(
            DeliverEvent(
                11, 0, 5, 4, AckMessage(msg_id=(5, 0), hop_sender=4, hop_dest=5)
            )
        )
        assert check_ack_determinism(trace) == []

    def test_duplicate_delivery_flagged(self):
        trace = EventTrace()
        message = DataMessage(
            msg_id=(5, 0), origin=5, hop_sender=5, hop_dest=4
        )
        trace.record(DeliverEvent(10, 0, 4, 5, message))
        trace.record(DeliverEvent(22, 0, 4, 5, message))
        violations = check_exactly_once(trace)
        assert len(violations) == 1
        assert "again" in violations[0]

    def test_data_in_ack_slot_flagged(self):
        slots = SlotStructure(decay_budget=2, level_classes=3)
        trace = EventTrace()
        message = DataMessage(
            msg_id=(1, 0), origin=1, hop_sender=1, hop_dest=0
        )
        trace.record(TransmitEvent(1, 0, 1, message))  # slot 1 is an ACK slot
        violations = check_slot_discipline(trace, slots, channel=0)
        assert len(violations) == 1

    def test_wrong_level_class_flagged(self):
        slots = SlotStructure(decay_budget=2, level_classes=3)
        trace = EventTrace()
        message = DataMessage(
            msg_id=(1, 0), origin=1, hop_sender=1, hop_dest=0
        )
        # Slot 0 is the class-0 data slot; a level-1 station must not use it.
        trace.record(TransmitEvent(0, 0, 1, message))
        violations = check_level_classes(trace, slots, {1: 1}, channel=0)
        assert len(violations) == 1

    def test_unknown_level_flagged(self):
        slots = SlotStructure(decay_budget=2, level_classes=3)
        trace = EventTrace()
        message = DataMessage(
            msg_id=(9, 0), origin=9, hop_sender=9, hop_dest=0
        )
        trace.record(TransmitEvent(0, 0, 9, message))
        violations = check_level_classes(trace, slots, {}, channel=0)
        assert "unknown level" in violations[0]

    def test_channel_filter(self):
        trace = EventTrace()
        message = DataMessage(
            msg_id=(5, 0), origin=5, hop_sender=5, hop_dest=4
        )
        trace.record(DeliverEvent(10, 1, 4, 5, message))  # channel 1
        assert check_ack_determinism(trace, channel=0) == []
        assert len(check_ack_determinism(trace, channel=1)) == 1
