"""Hypothesis property tests at the whole-protocol level.

Randomized topologies × randomized workloads × the protocols' own coins:
the Las-Vegas guarantees must hold on *every* sample — exactly-once
delivery, order isomorphism, interval laminarity — never just on the
hand-picked fixtures of the unit tests.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    run_broadcast,
    run_collection,
    run_dfs_preparation,
    run_point_to_point,
)
from repro.graphs import Graph, random_tree, reference_bfs_tree


@st.composite
def tree_topologies(draw):
    """A random tree (the spanned subgraph every protocol runs on)."""
    n = draw(st.integers(min_value=2, max_value=14))
    seed = draw(st.integers(0, 10**6))
    return random_tree(n, random.Random(seed))


@st.composite
def sparse_topologies(draw):
    """A random tree plus a few chords (cycles stress the radio side)."""
    graph = draw(tree_topologies())
    rng = random.Random(draw(st.integers(0, 10**6)))
    nodes = list(graph.nodes)
    for _ in range(draw(st.integers(0, 3))):
        u, v = rng.choice(nodes), rng.choice(nodes)
        if u != v and not graph.has_edge(u, v):
            graph = graph.with_edge(u, v)
    return graph


class TestCollectionProperties:
    @given(
        sparse_topologies(),
        st.integers(0, 10**6),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_exactly_once_to_root(self, graph, seed, data):
        tree = reference_bfs_tree(graph, graph.nodes[0])
        nodes = list(graph.nodes)
        source_count = data.draw(
            st.integers(1, min(4, len(nodes))), label="sources"
        )
        sources = {}
        for i in range(source_count):
            node = nodes[(i * 7 + 1) % len(nodes)]
            sources.setdefault(node, []).append(f"p{i}")
        result = run_collection(graph, tree, sources, seed=seed)
        expected = sorted(p for v in sources.values() for p in v)
        assert sorted(m.payload for m in result.delivered) == expected
        assert len({m.msg_id for m in result.delivered}) == len(expected)


class TestPointToPointProperties:
    @given(sparse_topologies(), st.integers(0, 10**6), st.data())
    @settings(max_examples=20, deadline=None)
    def test_every_message_reaches_its_destination(self, graph, seed, data):
        tree = reference_bfs_tree(graph, graph.nodes[0])
        tree.assign_dfs_intervals()
        nodes = list(graph.nodes)
        k = data.draw(st.integers(1, 5), label="k")
        rng = random.Random(seed ^ 0x5A5A)
        batch = []
        for i in range(k):
            u, v = rng.choice(nodes), rng.choice(nodes)
            batch.append((u, v, f"m{i}"))
        result = run_point_to_point(graph, tree, batch, seed=seed)
        got = {
            (m.origin, dest, m.payload)
            for dest, messages in result.delivered.items()
            for m in messages
        }
        assert got == set(batch)


class TestDfsProperties:
    @given(sparse_topologies())
    @settings(max_examples=25, deadline=None)
    def test_distributed_dfs_matches_centralized(self, graph):
        import copy

        tree = reference_bfs_tree(graph, graph.nodes[0])
        result = run_dfs_preparation(graph, tree)
        reference = copy.deepcopy(tree)
        reference.assign_dfs_intervals()
        assert result.dfs_number == reference.dfs_number
        assert result.subtree_max == reference.subtree_max


class TestBroadcastProperties:
    @given(tree_topologies(), st.integers(0, 10**6), st.data())
    @settings(max_examples=12, deadline=None)
    def test_uniform_prefix_everywhere(self, graph, seed, data):
        tree = reference_bfs_tree(graph, graph.nodes[0])
        nodes = list(graph.nodes)
        k = data.draw(st.integers(1, 3), label="k")
        source = nodes[seed % len(nodes)]
        result = run_broadcast(
            graph, tree, {source: [f"b{i}" for i in range(k)]}, seed=seed
        )
        assert result.delivered_everywhere
