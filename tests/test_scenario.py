"""Tests for the declarative scenario DSL (repro.scenario).

The load-bearing properties: a spec file parses into the same task grid
no matter who compiles it (content-hashed experiment ids), validation
failures name the offending key by its dotted path, a registry-twin
scenario compiles to the *identical* task list as the registered
experiment (same cache keys), and a scenario run is bit-identical
across worker counts and replays 100% from a warm cache.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.errors import ConfigurationError
from repro.runner import get_experiment, registered_ids
from repro.scenario import (
    ValidationError,
    compile_scenario,
    discover_scenarios,
    parse_scenario,
    run_scenario,
)
from repro.scenario.discovery import unknown_experiment_message
from repro.scenario.runtime import jain_fairness, run_scenario_task


def write_spec(tmp_path, text, name="spec.toml"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(text))
    return path


BASIC = """
    [scenario]
    name = "basic"

    [topology]
    name = "path-6"

    [arrivals]
    kind = "bernoulli"
    rate = 0.2
    sources = "all"

    [protocol]
    kind = "collection"

    [run]
    seed = 7
    replications = 2
    horizon_phases = 15
"""

#: A closed fault-free collection scenario — the one general shape the
#: lockstep batch engine simulates.
CLOSED_VECTOR = """
    [scenario]
    name = "closed"

    [topology]
    name = "path-6"

    [arrivals]
    kind = "none"
    messages = 2
    sources = "all"

    [protocol]
    kind = "collection"

    [engine]
    kind = "vector"

    [run]
    seed = 7
    replications = 3
"""


# ----------------------------------------------------------------------
# validation: failures carry the offending path
# ----------------------------------------------------------------------

class TestValidation:
    def test_basic_spec_parses(self, tmp_path):
        spec = parse_scenario(write_spec(tmp_path, BASIC))
        assert spec.name == "basic"
        assert spec.run["replications"] == 2
        assert spec.arrivals["rate"] == 0.2

    def test_json_specs_parse_too(self, tmp_path):
        data = {
            "scenario": {"name": "j"},
            "topology": {"name": "path-4"},
            "protocol": {"kind": "collection"},
            "arrivals": {"kind": "none", "messages": 2},
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(data))
        spec = parse_scenario(path)
        assert spec.name == "j"

    def test_unknown_table_is_rejected_with_suggestion(self, tmp_path):
        bad = BASIC + "\n[topolgy]\nfoo = 1\n"
        with pytest.raises(ValidationError) as err:
            parse_scenario(write_spec(tmp_path, bad))
        assert err.value.path == "topolgy"
        assert "topology" in str(err.value)

    def test_unknown_key_names_its_path(self, tmp_path):
        bad = BASIC.replace("rate = 0.2", "rate = 0.2\nrte = 0.3")
        with pytest.raises(ValidationError) as err:
            parse_scenario(write_spec(tmp_path, bad))
        assert err.value.path == "arrivals.rte"
        assert "did you mean" in str(err.value)

    def test_type_error_names_its_path(self, tmp_path):
        bad = BASIC.replace("rate = 0.2", 'rate = "fast"')
        with pytest.raises(ValidationError) as err:
            parse_scenario(write_spec(tmp_path, bad))
        assert err.value.path == "arrivals.rate"

    def test_range_error_names_its_path(self, tmp_path):
        bad = BASIC.replace("rate = 0.2", "rate = -0.5")
        with pytest.raises(ValidationError) as err:
            parse_scenario(write_spec(tmp_path, bad))
        assert err.value.path == "arrivals.rate"

    def test_bernoulli_rate_above_one_is_cross_checked(self, tmp_path):
        bad = BASIC.replace("rate = 0.2", "rate = 1.5")
        with pytest.raises(ValidationError) as err:
            parse_scenario(write_spec(tmp_path, bad))
        assert "arrivals.rate" in str(err.value)

    def test_sweep_item_error_names_the_index(self, tmp_path):
        bad = BASIC.replace('name = "path-6"', 'name = ["path-6", "blob-9"]')
        with pytest.raises(ValidationError) as err:
            parse_scenario(write_spec(tmp_path, bad))
        assert err.value.path == "topology.name[1]"

    def test_bad_topology_grammar(self, tmp_path):
        bad = BASIC.replace('name = "path-6"', 'name = "path-x"')
        with pytest.raises(ValidationError) as err:
            parse_scenario(write_spec(tmp_path, bad))
        assert err.value.path == "topology.name"

    def test_fault_needs_collection(self, tmp_path):
        bad = BASIC.replace(
            'kind = "collection"', 'kind = "p2p"'
        ) + "\n[faults]\nkind = \"churn\"\nfail_rate = 0.01\nrecover_rate = 0.1\n"
        with pytest.raises(ValidationError) as err:
            parse_scenario(write_spec(tmp_path, bad))
        assert "faults.kind" in str(err.value)

    def test_jam_duty_must_fit_period(self, tmp_path):
        bad = BASIC + textwrap.dedent(
            """
            [faults]
            kind = "jammer"
            jam_period = 10
            jam_duty = 20
            """
        )
        with pytest.raises(ValidationError) as err:
            parse_scenario(write_spec(tmp_path, bad))
        assert "jam_duty" in str(err.value)

    def test_vector_engine_rejected_for_streaming_arrivals(self, tmp_path):
        # BASIC uses bernoulli arrivals: the lockstep engine runs closed
        # workloads only.
        bad = BASIC + "\n[engine]\nkind = \"vector\"\n"
        with pytest.raises(ValidationError) as err:
            parse_scenario(write_spec(tmp_path, bad))
        assert "engine.kind" in str(err.value)

    def test_vector_engine_rejected_for_other_protocols(self, tmp_path):
        bad = (CLOSED_VECTOR.replace('kind = "collection"', 'kind = "p2p"'))
        with pytest.raises(ValidationError) as err:
            parse_scenario(write_spec(tmp_path, bad))
        assert "engine.kind" in str(err.value)

    def test_vector_engine_rejected_for_faulted_runs(self, tmp_path):
        bad = CLOSED_VECTOR + textwrap.dedent(
            """
            [faults]
            kind = "churn"
            fail_rate = 0.01
            recover_rate = 0.2
            """
        )
        with pytest.raises(ValidationError) as err:
            parse_scenario(write_spec(tmp_path, bad))
        assert "engine.kind" in str(err.value)

    def test_vector_engine_rejected_for_mobility(self, tmp_path):
        bad = CLOSED_VECTOR.replace(
            'kind = "collection"',
            'kind = "collection"\nmobility_epochs = 3',
        )
        with pytest.raises(ValidationError) as err:
            parse_scenario(write_spec(tmp_path, bad))
        assert "engine.kind" in str(err.value)

    def test_vector_engine_accepted_for_closed_collection(self, tmp_path):
        spec = parse_scenario(write_spec(tmp_path, CLOSED_VECTOR))
        assert spec.engine["kind"] == "vector"

    def test_registry_mode_forbids_general_tables(self, tmp_path):
        bad = """
            [scenario]
            name = "t"

            [registry]
            experiment = "E2"

            [topology]
            name = "path-4"
        """
        with pytest.raises(ValidationError) as err:
            parse_scenario(write_spec(tmp_path, bad))
        assert "topology" in str(err.value)

    def test_missing_required_key(self, tmp_path):
        bad = BASIC.replace('name = "basic"\n', "")
        with pytest.raises(ValidationError) as err:
            parse_scenario(write_spec(tmp_path, bad))
        assert err.value.path == "scenario.name"

    def test_toml_syntax_error_is_a_validation_error(self, tmp_path):
        with pytest.raises(ValidationError):
            parse_scenario(write_spec(tmp_path, "[scenario\nname='x'"))


# ----------------------------------------------------------------------
# compilation: deterministic ids, pruned cases, registry twins
# ----------------------------------------------------------------------

class TestCompile:
    def test_exp_id_is_content_addressed(self, tmp_path):
        a = compile_scenario(parse_scenario(write_spec(tmp_path, BASIC)))
        b = compile_scenario(parse_scenario(write_spec(tmp_path, BASIC)))
        assert a.exp_id == b.exp_id
        assert a.exp_id.startswith("scenario:basic:")

    def test_cosmetic_edits_keep_the_id(self, tmp_path):
        base = compile_scenario(parse_scenario(write_spec(tmp_path, BASIC)))
        cosmetic = BASIC.replace(
            '[scenario]\n    name = "basic"',
            '[scenario]\n    name = "basic"\n    title = "a title"',
        )
        edited = compile_scenario(
            parse_scenario(write_spec(tmp_path, cosmetic))
        )
        assert edited.exp_id == base.exp_id

    def test_semantic_edits_change_the_id(self, tmp_path):
        base = compile_scenario(parse_scenario(write_spec(tmp_path, BASIC)))
        changed = compile_scenario(parse_scenario(write_spec(
            tmp_path, BASIC.replace("rate = 0.2", "rate = 0.25")
        )))
        assert changed.exp_id != base.exp_id

    def test_sweep_expands_the_cross_product(self, tmp_path):
        text = BASIC.replace(
            'name = "path-6"', 'name = ["path-6", "star-6"]'
        ).replace("rate = 0.2", "rate = [0.1, 0.2]")
        compiled = compile_scenario(parse_scenario(write_spec(tmp_path, text)))
        assert len(compiled.cases) == 4
        assert len(compiled.tasks) == 8  # x2 replications

    def test_irrelevant_axes_prune_out_of_cases(self, tmp_path):
        # A closed workload never consumes the horizon; the case must
        # not carry it (it would pollute the cache key).
        text = BASIC.replace(
            'kind = "bernoulli"\n    rate = 0.2', 'kind = "none"'
        )
        compiled = compile_scenario(parse_scenario(write_spec(tmp_path, text)))
        (case,) = compiled.cases
        assert "horizon_phases" not in case
        assert "rate" not in case
        assert case["messages"] == 4

    def test_registry_twin_tasks_are_identical(self, tmp_path):
        text = """
            [scenario]
            name = "twin"

            [registry]
            experiment = "E2"

            [run]
            seed = 7
            replications = 5
        """
        compiled = compile_scenario(parse_scenario(write_spec(tmp_path, text)))
        assert compiled.registry_mode
        expected = get_experiment("E2").tasks(7, 5)
        assert compiled.tasks == expected
        version = "test-version"
        assert [t.key(version) for t in compiled.tasks] == [
            t.key(version) for t in expected
        ]

    def test_registry_twin_unknown_experiment(self, tmp_path):
        text = """
            [scenario]
            name = "twin"

            [registry]
            experiment = "E999"
        """
        with pytest.raises(ConfigurationError):
            compile_scenario(parse_scenario(write_spec(tmp_path, text)))


# ----------------------------------------------------------------------
# execution: sharding determinism, cache replay, worker-side dispatch
# ----------------------------------------------------------------------

def _metrics_by_label(report):
    return {
        o.spec.label(): dict(o.metrics)
        for o in report.outcomes
    }


class TestRun:
    def test_bit_identical_across_worker_counts(self, tmp_path):
        compiled = compile_scenario(
            parse_scenario(write_spec(tmp_path, BASIC))
        )
        inline = run_scenario(compiled, workers=0)
        sharded = run_scenario(compiled, workers=2)
        assert _metrics_by_label(inline) == _metrics_by_label(sharded)

    def test_warm_cache_executes_nothing(self, tmp_path):
        compiled = compile_scenario(
            parse_scenario(write_spec(tmp_path, BASIC))
        )
        cache = tmp_path / "cache"
        cold = run_scenario(compiled, workers=0, cache=cache)
        warm = run_scenario(compiled, workers=0, cache=cache)
        assert cold.executed == len(compiled.tasks)
        assert warm.executed == 0
        assert warm.cache_hits == len(compiled.tasks)
        assert _metrics_by_label(cold) == _metrics_by_label(warm)

    def test_scenario_prefix_resolves_in_registry(self, tmp_path):
        compiled = compile_scenario(
            parse_scenario(write_spec(tmp_path, BASIC))
        )
        defn = get_experiment(compiled.exp_id)
        assert defn.exp_id == compiled.exp_id
        assert defn.run_task is run_scenario_task
        with pytest.raises(ConfigurationError):
            defn.tasks(7, 2)

    def test_metrics_are_numeric(self, tmp_path):
        compiled = compile_scenario(
            parse_scenario(write_spec(tmp_path, BASIC))
        )
        report = run_scenario(compiled, workers=0)
        for outcome in report.outcomes:
            for name, value in outcome.metrics.items():
                float(value)  # summary_table floats every metric


class TestVectorScenario:
    """Closed collection scenarios on the lockstep batch engine."""

    def test_compile_threads_engine_knobs_into_tasks(self, tmp_path):
        text = CLOSED_VECTOR.replace(
            'kind = "vector"', 'kind = "vector"\nmask = "on"'
        )
        compiled = compile_scenario(parse_scenario(write_spec(tmp_path, text)))
        assert compiled.engine == "vector"
        assert compiled.mask == "on"
        for task in compiled.tasks:
            assert task.engine == "vector"
            assert task.mask == "on"

    def test_vector_run_delivers_everything(self, tmp_path):
        compiled = compile_scenario(
            parse_scenario(write_spec(tmp_path, CLOSED_VECTOR))
        )
        report = run_scenario(compiled, workers=0)
        assert len(report.outcomes) == len(compiled.tasks)
        for outcome in report.outcomes:
            metrics = outcome.metrics
            assert metrics["submitted"] == 10  # 5 non-root stations x 2
            assert metrics["delivered"] == 10
            assert metrics["delivery_ratio"] == 1.0
            assert metrics["lost"] == 0
            assert metrics["slots"] > 0
            # The lockstep engine has no per-channel stats object; the
            # batch path reports the honest subset, not fabricated zeros.
            assert "transmissions" not in metrics
            assert "collision_rate" not in metrics

    def test_vector_scenario_bit_identical_across_workers(self, tmp_path):
        compiled = compile_scenario(
            parse_scenario(write_spec(tmp_path, CLOSED_VECTOR))
        )
        inline = run_scenario(compiled, workers=0)
        sharded = run_scenario(compiled, workers=2)
        assert _metrics_by_label(inline) == _metrics_by_label(sharded)

    def test_vector_and_scalar_share_the_grid_id(self, tmp_path):
        # Engine knobs are execution strategy, not case semantics: the
        # grid hash must not move, but the task cache keys must.
        scalar = compile_scenario(parse_scenario(write_spec(
            tmp_path, CLOSED_VECTOR.replace('kind = "vector"', 'kind = "scalar"')
        )))
        vector = compile_scenario(
            parse_scenario(write_spec(tmp_path, CLOSED_VECTOR))
        )
        assert scalar.exp_id == vector.exp_id
        version = "test-version"
        assert [t.key(version) for t in scalar.tasks] != [
            t.key(version) for t in vector.tasks
        ]

    def test_batch_guard_rejects_foreign_cases(self):
        from repro.runner.task import TaskSpec
        from repro.scenario.runtime import run_scenario_batch

        params = {
            "protocol": "collection", "topology": "path-5",
            "sources": "all", "arrival": "bernoulli", "rate": 0.2,
            "horizon_phases": 5,
        }
        spec = TaskSpec(
            exp_id="scenario:t:x", case=tuple(sorted(params.items())),
            replicate=0, seed=3, engine="vector",
        )
        with pytest.raises(ConfigurationError):
            run_scenario_batch([spec])


# ----------------------------------------------------------------------
# runtime helpers
# ----------------------------------------------------------------------

class TestRuntime:
    def test_jain_fairness_bounds(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([5, 5, 5]) == pytest.approx(1.0)
        assert jain_fairness([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_closed_collection_task(self):
        from repro.runner.task import TaskSpec

        params = {
            "protocol": "collection", "topology": "path-5", "classes": 3,
            "sources": "all", "arrival": "none", "messages": 2,
        }
        spec = TaskSpec(
            exp_id="scenario:t:x", case=tuple(sorted(params.items())),
            replicate=0, seed=11,
        )
        metrics = run_scenario_task(spec)
        assert metrics["submitted"] == 8  # 4 non-root stations x 2
        assert metrics["delivered"] == 8
        assert metrics["delivery_ratio"] == 1.0

    def test_unknown_protocol_kind_raises(self):
        from repro.runner.task import TaskSpec

        spec = TaskSpec(
            exp_id="scenario:t:x", case=(("protocol", "warp"),),
            replicate=0, seed=1,
        )
        with pytest.raises(ConfigurationError):
            run_scenario_task(spec)


# ----------------------------------------------------------------------
# discovery and the shared unknown-id message
# ----------------------------------------------------------------------

class TestDiscovery:
    def test_discovers_valid_and_invalid_files(self, tmp_path):
        folder = tmp_path / "scenarios"
        folder.mkdir()
        (folder / "good.toml").write_text(textwrap.dedent(BASIC))
        (folder / "bad.toml").write_text("[scenario]\nnme = 'x'\n")
        (folder / "notes.txt").write_text("ignored")
        found = discover_scenarios(tmp_path)
        names = {item.path.name: item.ok for item in found}
        assert names == {"good.toml": True, "bad.toml": False}
        good = next(item for item in found if item.ok)
        assert good.name == "basic"

    def test_unknown_id_message_lists_both_namespaces(self, tmp_path):
        folder = tmp_path / "scenarios"
        folder.mkdir()
        (folder / "good.toml").write_text(textwrap.dedent(BASIC))
        message = unknown_experiment_message(
            "E99", registered_ids(), root=tmp_path
        )
        assert "E99" in message
        for exp_id in registered_ids():
            assert exp_id in message
        assert "basic" in message

    def test_suggests_scenario_names_too(self, tmp_path):
        folder = tmp_path / "scenarios"
        folder.mkdir()
        (folder / "good.toml").write_text(textwrap.dedent(BASIC))
        message = unknown_experiment_message("basik", [], root=tmp_path)
        assert "did you mean 'basic'?" in message


# ----------------------------------------------------------------------
# the shipped library stays valid
# ----------------------------------------------------------------------

def test_shipped_scenarios_validate(repo_root=None):
    import pathlib

    root = pathlib.Path(__file__).resolve().parent.parent
    shipped = sorted((root / "scenarios").glob("*.toml"))
    assert len(shipped) >= 6
    for path in shipped:
        compiled = compile_scenario(parse_scenario(path))
        assert compiled.tasks
