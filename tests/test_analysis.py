"""Tests for the analysis/statistics/table utilities."""

import math

import pytest

from repro.analysis import (
    Summary,
    format_table,
    geometric_pmf,
    linear_fit,
    print_table,
    r_squared,
    replicate,
    replicated,
    scaling_exponent,
    standard_topologies,
    summarize,
    sweep,
    total_variation_distance,
)
from repro.errors import ConfigurationError
from repro.graphs import is_connected


class TestSummarize:
    def test_mean_and_interval(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.count == 3
        assert s.ci_low < 2.0 < s.ci_high

    def test_single_sample(self):
        s = summarize([5.0])
        assert s.mean == 5.0
        assert s.stddev == 0.0
        assert s.ci_half_width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_str_contains_mean(self):
        assert "2.00" in str(summarize([2.0, 2.0]))


class TestFitting:
    def test_linear_fit_exact(self):
        slope, intercept = linear_fit([0, 1, 2], [1, 3, 5])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_r_squared_perfect(self):
        assert r_squared([0, 1, 2], [1, 3, 5]) == pytest.approx(1.0)

    def test_degenerate_fit_rejected(self):
        with pytest.raises(ConfigurationError):
            linear_fit([1, 1], [2, 3])
        with pytest.raises(ConfigurationError):
            linear_fit([1], [2])

    def test_scaling_exponent_quadratic(self):
        xs = [2, 4, 8, 16]
        ys = [x**2 for x in xs]
        assert scaling_exponent(xs, ys) == pytest.approx(2.0)

    def test_scaling_exponent_linear(self):
        xs = [3, 6, 12]
        ys = [5 * x for x in xs]
        assert scaling_exponent(xs, ys) == pytest.approx(1.0)

    def test_scaling_requires_positive(self):
        with pytest.raises(ConfigurationError):
            scaling_exponent([0, 1], [1, 2])


class TestDistributionHelpers:
    def test_geometric_pmf_sums_to_one(self):
        total = sum(geometric_pmf(0.3, k) for k in range(1, 200))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_geometric_pmf_validation(self):
        with pytest.raises(ConfigurationError):
            geometric_pmf(0.0, 1)
        with pytest.raises(ConfigurationError):
            geometric_pmf(0.5, 0)

    def test_total_variation(self):
        assert total_variation_distance([1.0], [1.0]) == 0.0
        assert total_variation_distance([1.0, 0.0], [0.0, 1.0]) == 1.0
        assert total_variation_distance([0.5, 0.5], [0.5]) == pytest.approx(
            0.25
        )


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(
            ["name", "value"], [["a", 1.5], ["bb", 22.5]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_row_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            format_table(["a"], [["x", "y"]])

    def test_float_formatting(self):
        out = format_table(["v"], [[1234.5678], [0.1234], [12.34]])
        assert "1,235" in out
        assert "0.123" in out
        assert "12.3" in out

    def test_print_table_smoke(self, capsys):
        print_table(["h"], [[1]])
        captured = capsys.readouterr()
        assert "h" in captured.out


class TestReplication:
    def test_replicate(self):
        assert replicate(lambda s: s % 3, [0, 1, 2, 3]) == [0, 1, 2, 0]

    def test_replicated_measure(self):
        result = replicated(lambda seed: float(seed % 7), 10, seed=1)
        assert result.summary.count == 10

    def test_replicated_deterministic(self):
        a = replicated(lambda s: float(s % 100), 5, seed=2)
        b = replicated(lambda s: float(s % 100), 5, seed=2)
        assert a.samples == b.samples

    def test_replication_count_validated(self):
        with pytest.raises(ConfigurationError):
            replicated(lambda s: 0.0, 0, seed=1)


class TestTopologySweep:
    def test_standard_topologies_connected(self):
        for point in standard_topologies(scale=1):
            graph = point.make(seed=3)
            assert is_connected(graph), point.name
            assert graph.num_nodes >= 2

    def test_scale_grows_sizes(self):
        small = {p.name for p in standard_topologies(1)}
        large = {p.name for p in standard_topologies(2)}
        assert small != large

    def test_sweep_runs_measure_everywhere(self):
        points = standard_topologies(1)[:3]
        results = sweep(
            points,
            measure=lambda graph, seed: float(graph.num_nodes),
            replications=3,
            seed=5,
        )
        assert set(results) == {p.name for p in points}
        for measurement in results.values():
            assert len(measurement.samples) == 3


class TestExperimentRegistry:
    def test_every_registered_bench_exists(self):
        import pathlib

        from repro.analysis import REGISTRY

        bench_dir = (
            pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
        )
        for experiment in REGISTRY:
            assert (bench_dir / experiment.bench_file).exists(), (
                experiment.exp_id
            )

    def test_every_bench_file_is_registered(self):
        import pathlib

        from repro.analysis import REGISTRY

        bench_dir = (
            pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
        )
        registered = {e.bench_file for e in REGISTRY}
        on_disk = {
            p.name
            for p in bench_dir.glob("bench_*.py")
        }
        assert on_disk == registered

    def test_ids_unique_and_ordered(self):
        from repro.analysis import REGISTRY

        ids = [e.exp_id for e in REGISTRY]
        assert len(set(ids)) == len(ids)
        assert ids == sorted(ids, key=lambda x: int(x[1:]))

    def test_by_id(self):
        from repro.analysis import by_id

        assert by_id("E3").paper_ref == "Theorem 4.4"
        with pytest.raises(KeyError):
            by_id("E99")

    def test_registry_table_renders(self):
        from repro.analysis import registry_table

        table = registry_table()
        assert "E1" in table and "E15" in table

    def test_modules_importable(self):
        import importlib

        from repro.analysis import REGISTRY

        for experiment in REGISTRY:
            for module in experiment.modules:
                importlib.import_module(module)
