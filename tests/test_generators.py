"""Unit tests for topology generators."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.graphs import (
    balanced_tree,
    caterpillar,
    complete,
    cycle,
    diameter,
    gnp_connected,
    grid,
    is_connected,
    layered_band,
    lollipop,
    path,
    random_geometric,
    random_tree,
    star,
)


class TestPath:
    def test_shape(self):
        g = path(5)
        assert g.num_nodes == 5
        assert g.num_edges == 4
        assert diameter(g) == 4
        assert g.max_degree() == 2

    def test_single_node(self):
        g = path(1)
        assert g.num_nodes == 1 and g.num_edges == 0

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            path(0)


class TestCycle:
    def test_shape(self):
        g = cycle(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.nodes)
        assert diameter(g) == 3

    def test_too_small(self):
        with pytest.raises(ConfigurationError):
            cycle(2)


class TestStar:
    def test_shape(self):
        g = star(7)
        assert g.degree(0) == 6
        assert all(g.degree(v) == 1 for v in g.nodes if v != 0)
        assert diameter(g) == 2

    def test_star_of_one(self):
        assert star(1).num_nodes == 1


class TestComplete:
    def test_shape(self):
        g = complete(5)
        assert g.num_edges == 10
        assert diameter(g) == 1
        assert g.max_degree() == 4


class TestGrid:
    def test_shape(self):
        g = grid(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4
        assert g.max_degree() == 4
        assert diameter(g) == (3 - 1) + (4 - 1)

    def test_degenerate_is_path(self):
        assert grid(1, 6) == path(6)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            grid(0, 3)


class TestBalancedTree:
    def test_counts(self):
        g = balanced_tree(2, 3)
        assert g.num_nodes == 1 + 2 + 4 + 8
        assert g.num_edges == g.num_nodes - 1

    def test_depth_zero(self):
        assert balanced_tree(3, 0).num_nodes == 1

    def test_unary_is_path(self):
        assert balanced_tree(1, 4) == path(5)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            balanced_tree(0, 2)
        with pytest.raises(ConfigurationError):
            balanced_tree(2, -1)


class TestCaterpillar:
    def test_counts(self):
        g = caterpillar(5, 2)
        assert g.num_nodes == 5 + 10
        assert g.num_edges == 4 + 10
        assert g.max_degree() == 2 + 2

    def test_no_legs_is_path(self):
        assert caterpillar(4, 0) == path(4)

    def test_diameter_tracks_spine(self):
        assert diameter(caterpillar(6, 3)) == 5 + 2


class TestRandomTree:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 25])
    def test_is_tree(self, n):
        g = random_tree(n, random.Random(5))
        assert g.num_nodes == n
        assert g.num_edges == n - 1 if n > 1 else g.num_edges == 0
        assert is_connected(g)

    def test_deterministic_given_seed(self):
        a = random_tree(20, random.Random(9))
        b = random_tree(20, random.Random(9))
        assert a == b

    def test_varies_with_seed(self):
        graphs = {
            tuple(random_tree(12, random.Random(s)).edges())
            for s in range(8)
        }
        assert len(graphs) > 1


class TestRandomGeometric:
    def test_connected_and_sized(self):
        g = random_geometric(25, radius=0.35, rng=random.Random(0))
        assert g.num_nodes == 25
        assert is_connected(g)

    def test_deterministic_given_seed(self):
        a = random_geometric(15, 0.4, random.Random(3))
        b = random_geometric(15, 0.4, random.Random(3))
        assert a == b

    def test_impossible_radius_raises(self):
        with pytest.raises(ConfigurationError):
            random_geometric(30, radius=0.01, rng=random.Random(1), max_attempts=3)


class TestGnp:
    def test_connected(self):
        g = gnp_connected(20, 0.3, random.Random(4))
        assert is_connected(g) and g.num_nodes == 20

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            gnp_connected(5, 1.5, random.Random(0))

    def test_sparse_impossible(self):
        with pytest.raises(ConfigurationError):
            gnp_connected(40, 0.0, random.Random(0), max_attempts=2)


class TestLollipop:
    def test_shape(self):
        g = lollipop(5, 4)
        assert g.num_nodes == 9
        assert g.max_degree() == 5  # clique node 0 also anchors the tail
        assert diameter(g) == 5


class TestLayeredBand:
    def test_shape(self):
        g = layered_band(4, 3)
        assert g.num_nodes == 12
        assert diameter(g) == 3
        # Interior node: 2 within layer + 3 up + 3 down.
        assert g.max_degree() == 8

    def test_single_layer_is_clique(self):
        assert layered_band(1, 4) == complete(4)


class TestHypercube:
    def test_shape(self):
        from repro.graphs import hypercube

        g = hypercube(4)
        assert g.num_nodes == 16
        assert all(g.degree(v) == 4 for v in g.nodes)
        assert diameter(g) == 4

    def test_degenerate(self):
        from repro.graphs import hypercube

        assert hypercube(0).num_nodes == 1
        assert hypercube(1) == path(2)

    def test_invalid(self):
        from repro.graphs import hypercube

        with pytest.raises(ConfigurationError):
            hypercube(-1)


class TestTorus:
    def test_shape(self):
        from repro.graphs import torus

        g = torus(4, 5)
        assert g.num_nodes == 20
        assert all(g.degree(v) == 4 for v in g.nodes)
        assert g.num_edges == 2 * 20
        assert diameter(g) == 2 + 2

    def test_connected(self):
        from repro.graphs import torus

        assert is_connected(torus(3, 3))

    def test_too_small(self):
        from repro.graphs import torus

        with pytest.raises(ConfigurationError):
            torus(2, 5)


class TestPositionedGeometric:
    def test_positions_generate_the_edges(self):
        import math

        from repro.graphs import random_geometric_with_positions

        radius = 0.35
        g, pos = random_geometric_with_positions(
            20, radius, random.Random(6)
        )
        for u, v in g.edges():
            assert math.dist(pos[u], pos[v]) <= radius + 1e-12
        # ...and non-edges are out of range.
        for u in g.nodes:
            for v in g.nodes:
                if u < v and not g.has_edge(u, v):
                    assert math.dist(pos[u], pos[v]) > radius

    def test_deterministic(self):
        from repro.graphs import random_geometric_with_positions

        a = random_geometric_with_positions(12, 0.4, random.Random(3))
        b = random_geometric_with_positions(12, 0.4, random.Random(3))
        assert a[0] == b[0] and a[1] == b[1]

    def test_matches_plain_generator(self):
        from repro.graphs import (
            random_geometric,
            random_geometric_with_positions,
        )

        plain = random_geometric(15, 0.4, random.Random(9))
        positioned, _pos = random_geometric_with_positions(
            15, 0.4, random.Random(9)
        )
        assert plain == positioned


class TestAsciiMap:
    def test_renders_all_stations(self):
        from repro.graphs import ascii_map, random_geometric_with_positions

        g, pos = random_geometric_with_positions(10, 0.5, random.Random(2))
        art = ascii_map(g, pos, width=40, height=12)
        body = "".join(art.splitlines()[1:-1])
        symbols = sum(1 for c in body if c not in " |")
        assert 1 <= symbols <= 10  # overlaps may merge into '*'

    def test_custom_labels(self):
        from repro.graphs import ascii_map
        from repro.graphs import path as make_path

        g = make_path(3)
        pos = {0: (0.0, 0.0), 1: (0.5, 0.5), 2: (1.0, 1.0)}
        art = ascii_map(g, pos, width=20, height=6, label=lambda v: "X")
        assert art.count("X") == 3

    def test_missing_positions_rejected(self):
        from repro.graphs import ascii_map
        from repro.graphs import path as make_path

        with pytest.raises(ConfigurationError):
            ascii_map(make_path(3), {0: (0, 0)}, width=10, height=5)

    def test_tiny_canvas_rejected(self):
        from repro.graphs import ascii_map
        from repro.graphs import path as make_path

        with pytest.raises(ConfigurationError):
            ascii_map(make_path(2), {0: (0, 0), 1: (1, 1)}, width=2, height=2)

    def test_link_length_histogram(self):
        from repro.graphs import (
            link_length_histogram,
            random_geometric_with_positions,
        )

        g, pos = random_geometric_with_positions(15, 0.4, random.Random(8))
        histogram = link_length_histogram(g, pos, bins=5)
        assert sum(histogram.values()) == g.num_edges
        assert max(histogram) <= 0.4 + 1e-9
