"""Unit tests for the Graph type."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.graphs import Graph


class TestConstruction:
    def test_from_edges_builds_symmetric_adjacency(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.neighbors(1) == (0, 2)
        assert g.neighbors(0) == (1,)
        assert g.neighbors(2) == (1,)

    def test_isolated_nodes_are_kept(self):
        g = Graph.from_edges([(0, 1)], nodes=[0, 1, 5])
        assert 5 in g
        assert g.neighbors(5) == ()
        assert g.num_nodes == 3

    def test_duplicate_edges_are_deduplicated(self):
        g = Graph.from_edges([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1
        assert g.degree(0) == 1

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Graph({0: [0]})

    def test_asymmetric_adjacency_rejected(self):
        with pytest.raises(TopologyError):
            Graph({0: [1], 1: []})

    def test_unknown_neighbor_rejected(self):
        with pytest.raises(TopologyError):
            Graph({0: [7]})

    def test_empty_graph(self):
        g = Graph({})
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.max_degree() == 0


class TestQueries:
    def test_nodes_sorted(self):
        g = Graph.from_edges([(3, 1), (2, 3)])
        assert g.nodes == (1, 2, 3)

    def test_num_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert g.num_edges == 3

    def test_degree_and_max_degree(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1
        assert g.max_degree() == 3

    def test_has_edge(self):
        g = Graph.from_edges([(0, 1)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 0)
        assert not g.has_edge(0, 99)

    def test_edges_each_once(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert sorted(g.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_len_iter_contains(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert len(g) == 3
        assert list(g) == [0, 1, 2]
        assert 2 in g and 9 not in g

    def test_equality(self):
        a = Graph.from_edges([(0, 1)])
        b = Graph.from_edges([(1, 0)])
        c = Graph.from_edges([(0, 2)])
        assert a == b
        assert a != c

    def test_repr_mentions_sizes(self):
        g = Graph.from_edges([(0, 1)])
        assert "n=2" in repr(g) and "m=1" in repr(g)


class TestDerivation:
    def test_with_edge_adds(self):
        g = Graph.from_edges([(0, 1)]).with_edge(1, 2)
        assert g.has_edge(1, 2)
        assert g.num_nodes == 3

    def test_with_edge_idempotent(self):
        g = Graph.from_edges([(0, 1)])
        assert g.with_edge(0, 1).num_edges == 1

    def test_without_node(self):
        g = Graph.from_edges([(0, 1), (1, 2)]).without_node(1)
        assert g.num_nodes == 2
        assert g.num_edges == 0

    def test_without_unknown_node(self):
        with pytest.raises(TopologyError):
            Graph.from_edges([(0, 1)]).without_node(9)

    def test_subgraph_induced(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        sub = g.subgraph([0, 1])
        assert sub.num_edges == 1
        assert sub.has_edge(0, 1)

    def test_subgraph_unknown_node(self):
        with pytest.raises(TopologyError):
            Graph.from_edges([(0, 1)]).subgraph([0, 9])

    def test_original_not_mutated(self):
        g = Graph.from_edges([(0, 1)])
        g.with_edge(5, 6)
        g.without_node(0)
        assert g.num_nodes == 2 and g.has_edge(0, 1)


@st.composite
def random_edge_lists(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    pairs = st.tuples(
        st.integers(0, n - 1), st.integers(0, n - 1)
    ).filter(lambda t: t[0] != t[1])
    return n, draw(st.lists(pairs, max_size=30))


class TestProperties:
    @given(random_edge_lists())
    @settings(max_examples=60)
    def test_adjacency_always_symmetric(self, data):
        n, edges = data
        g = Graph.from_edges(edges, nodes=range(n))
        for u in g.nodes:
            for v in g.neighbors(u):
                assert u in g.neighbors(v)

    @given(random_edge_lists())
    @settings(max_examples=60)
    def test_handshake_lemma(self, data):
        n, edges = data
        g = Graph.from_edges(edges, nodes=range(n))
        assert sum(g.degree(v) for v in g.nodes) == 2 * g.num_edges

    @given(random_edge_lists())
    @settings(max_examples=40)
    def test_edges_roundtrip(self, data):
        n, edges = data
        g = Graph.from_edges(edges, nodes=range(n))
        rebuilt = Graph.from_edges(g.edges(), nodes=g.nodes)
        assert rebuilt == g
