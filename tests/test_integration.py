"""End-to-end integration tests: the full paper pipeline on one network.

Election → distributed BFS setup → token-DFS preparation → steady-state
protocols (collection, point-to-point, broadcast, ranking), all over the
same topology with state produced by the *distributed* protocols (no
centralized bypass anywhere).
"""

import random

import pytest

from repro.core import (
    apply_preparation,
    elect_leader,
    prepared_tree_infos,
    run_broadcast,
    run_collection,
    run_dfs_preparation,
    run_point_to_point,
    run_ranking,
    run_setup,
)
from repro.graphs import bfs_levels, grid, random_geometric


@pytest.fixture(scope="module")
def pipeline():
    """Run the full setup pipeline once for all integration tests."""
    graph = random_geometric(24, 0.38, random.Random(321))
    election = elect_leader(graph, seed=100)
    root = election.leaders[0]
    setup = run_setup(graph, root=root, seed=200, require_true_bfs=True)
    tree = setup.tree
    prep = run_dfs_preparation(graph, tree)
    apply_preparation(tree, prep)
    return graph, tree, election, setup, prep


class TestPipeline:
    def test_election_found_max(self, pipeline):
        graph, _tree, election, _setup, _prep = pipeline
        assert election.leaders == [max(graph.nodes)]

    def test_setup_produced_true_bfs(self, pipeline):
        graph, tree, election, setup, _prep = pipeline
        assert setup.is_true_bfs
        assert tree.level == bfs_levels(graph, election.leaders[0])

    def test_preparation_is_consistent(self, pipeline):
        graph, tree, _e, _s, prep = pipeline
        assert sorted(prep.dfs_number.values()) == list(
            range(graph.num_nodes)
        )
        infos = prepared_tree_infos(graph, tree, prep)
        assert all(info.has_addressing for info in infos.values())

    def test_collection_over_distributed_tree(self, pipeline):
        graph, tree, *_ = pipeline
        sources = {n: [f"c{n}"] for n in list(graph.nodes)[::2] if n != tree.root}
        result = run_collection(graph, tree, sources, seed=7)
        assert len(result.delivered) == len(sources)

    def test_p2p_over_distributed_tree(self, pipeline):
        graph, tree, *_ = pipeline
        nodes = list(graph.nodes)
        batch = [
            (nodes[i], nodes[-1 - i], f"x{i}")
            for i in range(6)
            if nodes[i] != nodes[-1 - i]
        ]
        result = run_point_to_point(graph, tree, batch, seed=8)
        assert result.messages_delivered == len(batch)

    def test_broadcast_over_distributed_tree(self, pipeline):
        graph, tree, *_ = pipeline
        nodes = list(graph.nodes)
        result = run_broadcast(
            graph, tree, {nodes[3]: ["b0", "b1"], nodes[-2]: ["b2"]}, seed=9
        )
        assert result.delivered_everywhere

    def test_ranking_over_distributed_tree(self, pipeline):
        graph, tree, *_ = pipeline
        result = run_ranking(graph, tree, seed=10)
        expected = {n: i + 1 for i, n in enumerate(sorted(graph.nodes))}
        assert result.ranks == expected

    def test_setup_cost_dominates_per_paper(self, pipeline):
        """Setup is a one-time cost amortized over many transmissions: a
        single later p2p batch is much cheaper than setup (§1.2)."""
        graph, tree, _e, setup, _prep = pipeline
        nodes = list(graph.nodes)
        batch = [(nodes[0], nodes[-1], "q")]
        result = run_point_to_point(graph, tree, batch, seed=11)
        assert result.slots < setup.slots


class TestGridPipeline:
    def test_grid_end_to_end(self):
        graph = grid(4, 4)
        setup = run_setup(graph, root=5, seed=42)
        tree = setup.tree
        prep = run_dfs_preparation(graph, tree)
        apply_preparation(tree, prep)
        ranking = run_ranking(graph, tree, seed=1)
        assert ranking.ranks == {n: n + 1 for n in graph.nodes}


class TestFullSetupPipeline:
    """The one-call setup API (repro.core.run_full_setup)."""

    def test_bit_election_pipeline(self):
        from repro.core import run_full_setup, run_point_to_point

        graph = random_geometric(20, 0.4, random.Random(10))
        setup = run_full_setup(graph, seed=5)
        assert setup.root == max(graph.nodes)
        assert setup.tree.has_dfs_intervals
        assert setup.total_slots == (
            setup.election_slots
            + setup.bfs_slots
            + setup.preparation_slots
        )
        result = run_point_to_point(
            graph, setup.tree, [(graph.nodes[0], graph.nodes[-2], "go")],
            seed=6,
        )
        assert result.messages_delivered == 1

    def test_epidemic_election_pipeline(self):
        from repro.core import run_full_setup

        graph = grid(3, 3)
        setup = run_full_setup(graph, seed=3, election="epidemic")
        assert setup.root == 8
        assert setup.election_slots > 0

    def test_bypass_election(self):
        from repro.core import run_full_setup

        graph = grid(3, 3)
        setup = run_full_setup(graph, seed=3, election="none", root=4)
        assert setup.root == 4
        assert setup.election_slots == 0

    def test_bypass_requires_root(self):
        from repro.core import run_full_setup
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_full_setup(grid(3, 3), seed=0, election="none")

    def test_unknown_election_mode(self):
        from repro.core import run_full_setup
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_full_setup(grid(3, 3), seed=0, election="quantum")

    def test_infos_have_addressing(self):
        from repro.core import run_full_setup

        graph = random_geometric(14, 0.45, random.Random(2))
        setup = run_full_setup(graph, seed=9)
        assert all(
            info.has_addressing for info in setup.tree_infos.values()
        )
