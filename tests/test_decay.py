"""Unit and statistical tests for the Decay primitive."""

import random
from fractions import Fraction

import pytest

from repro.core import (
    DecayRelay,
    DecaySession,
    DecayTransmitter,
    decay_budget,
    decay_schedule,
    expected_transmissions,
    simulate_star_reception,
    success_probability_exact,
)
from repro.graphs import path, star
from repro.radio import RadioNetwork, SilentProcess


class TestDecaySession:
    def test_transmits_at_least_once(self):
        session = DecaySession(budget=4, rng=random.Random(0))
        assert session.should_transmit() is True

    def test_never_exceeds_budget(self):
        class AlwaysSurvive(random.Random):
            def random(self):
                return 0.9  # > 0.5 -> survive

        session = DecaySession(budget=3, rng=AlwaysSurvive())
        transmissions = [session.should_transmit() for _ in range(10)]
        assert transmissions == [True, True, True] + [False] * 7

    def test_dies_on_first_tails(self):
        class AlwaysDie(random.Random):
            def random(self):
                return 0.1  # < 0.5 -> die

        session = DecaySession(budget=5, rng=AlwaysDie())
        assert session.should_transmit() is True  # transmit-then-flip
        assert session.should_transmit() is False
        assert not session.alive

    def test_kill_silences(self):
        session = DecaySession(budget=5, rng=random.Random(1))
        session.kill()
        assert session.should_transmit() is False

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            DecaySession(budget=0, rng=random.Random(0))

    def test_schedule_is_contiguous_prefix(self):
        """A station transmits in a prefix of its opportunities, then dies."""
        for seed in range(50):
            pattern = decay_schedule(8, random.Random(seed))
            if False in pattern:
                first_false = pattern.index(False)
                assert all(not x for x in pattern[first_false:])

    def test_expected_transmissions_close_to_two(self):
        assert expected_transmissions(1) == 1.0
        assert abs(expected_transmissions(20) - 2.0) < 1e-4
        rng = random.Random(3)
        trials = 20_000
        total = sum(sum(decay_schedule(10, rng)) for _ in range(trials))
        assert abs(total / trials - expected_transmissions(10)) < 0.02


class TestExactSuccessProbability:
    def test_single_transmitter_always_succeeds(self):
        assert success_probability_exact(1, 1) == Fraction(1)
        assert success_probability_exact(1, 5) == Fraction(1)

    def test_two_transmitters_one_step(self):
        # success iff exactly one lives at step 2... with budget 1, both
        # start live: never exactly one at step 1 -> success only when m=1.
        assert success_probability_exact(2, 1) == Fraction(0)

    def test_two_transmitters_two_steps(self):
        # Step 1: both transmit (collision); each survives w.p. 1/2.
        # Step 2 begins with exactly one live w.p. 1/2 -> success.
        assert success_probability_exact(2, 2) == Fraction(1, 2)

    def test_paper_property_two(self):
        """Decay property (2): ≥ 1/2 for m ≤ Δ with budget 2·ceil(log2 Δ).

        (The bound is tight: m = Δ = 2 with budget 2 gives exactly 1/2.)
        """
        for max_degree in [2, 4, 8, 16, 32]:
            budget = decay_budget(max_degree)
            for m in range(2, max_degree + 1):
                p = success_probability_exact(m, budget)
                assert p >= Fraction(1, 2), (max_degree, m, p)
        assert success_probability_exact(2, decay_budget(2)) == Fraction(1, 2)

    def test_monotone_in_budget(self):
        for m in [2, 5, 9]:
            values = [
                success_probability_exact(m, b) for b in range(1, 10)
            ]
            assert values == sorted(values)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            success_probability_exact(0, 3)
        with pytest.raises(ValueError):
            success_probability_exact(3, 0)


class TestMonteCarloAgreement:
    @pytest.mark.parametrize("m,budget", [(2, 4), (4, 4), (7, 6)])
    def test_simulation_matches_exact(self, m, budget):
        exact = float(success_probability_exact(m, budget))
        estimate = simulate_star_reception(
            m, budget, random.Random(42), trials=20_000
        )
        assert abs(estimate - exact) < 0.02

    def test_engine_level_star_matches_exact(self):
        """Full radio-engine simulation of the star scenario."""
        m, budget = 3, 4
        exact = float(success_probability_exact(m, budget))
        successes = 0
        trials = 2_000
        for trial in range(trials):
            g = star(m + 1)  # center 0 listens; leaves 1..m decay
            net = RadioNetwork(g)
            center = SilentProcess(0)
            net.attach(center)
            for leaf in range(1, m + 1):
                net.attach(
                    DecayTransmitter(
                        leaf,
                        payload=f"msg{leaf}",
                        budget=budget,
                        rng=random.Random(1000 * trial + leaf),
                    )
                )
            net.run(budget)
            if center.heard:
                successes += 1
        assert abs(successes / trials - exact) < 0.04


class TestDecayRelay:
    def test_flood_informs_a_path(self):
        g = path(6)
        net = RadioNetwork(g)
        procs = {}
        for node in g.nodes:
            proc = DecayRelay(
                node,
                budget=4,
                repetitions=50,
                rng=random.Random(node + 99),
                initial_payload="m" if node == 0 else None,
            )
            procs[node] = proc
            net.attach(proc)
        net.run(
            2_000, until=lambda n: all(p.informed for p in procs.values())
        )
        assert all(p.informed for p in procs.values())
        assert all(p.payload == "m" for p in procs.values())

    def test_window_alignment(self):
        """A relay never transmits before the window after it was informed."""
        g = path(3)
        net = RadioNetwork(g)
        budget = 4
        relays = {
            node: DecayRelay(
                node,
                budget=budget,
                repetitions=10,
                rng=random.Random(node),
                initial_payload="x" if node == 0 else None,
            )
            for node in g.nodes
        }
        for relay in relays.values():
            net.attach(relay)
        net.run(budget)  # exactly one window
        relay1 = relays[1]
        if relay1.informed:
            assert relay1.informed_at_slot is not None
            # informed during window 0 -> must not have transmitted yet
            assert relay1._joined_window == 1

    def test_uninformed_relay_is_silent(self):
        relay = DecayRelay(5, budget=4, repetitions=3, rng=random.Random(0))
        assert relay.on_slot(0) is None
        assert not relay.informed
        assert not relay.is_done()
