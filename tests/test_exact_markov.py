"""Tests for the exact Markov-chain tandem solver."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.queueing import (
    expected_completion_exact,
    expected_completion_model2_exact,
    expected_completion_model3_exact,
    mean_completion,
    model4_prediction,
    precedes,
    reachable_states,
    simulate_model2,
    simulate_model3,
)


class TestStateEnumeration:
    def test_single_message_single_level(self):
        states = reachable_states((1,))
        assert set(states) == {(0,), (1,)}

    def test_reachable_states_precede_initial(self):
        initial = (1, 2, 1)
        for state in reachable_states(initial):
            assert precedes(state, initial)

    def test_counts_for_small_chain(self):
        # (0, k): the reservoir drains one at a time through one level.
        states = reachable_states((0, 3))
        # level load can be 0..3, reservoir 0..3, level+reservoir <= 3.
        assert len(states) == 10


class TestExactValues:
    def test_single_server_geometric(self):
        """One message, one level (empty reservoir): T ~ Geometric(µ)."""
        assert expected_completion_model2_exact(
            [1], mu=0.25
        ) == pytest.approx(4.0)

    def test_two_loaded_levels_deterministic(self):
        """µ = 1: the level-2 message needs 2 hops; the level-1 message
        exits in step 1 — completion is exactly 2."""
        assert expected_completion_model2_exact(
            [1, 1], mu=1.0
        ) == pytest.approx(2.0)

    def test_deterministic_pipeline(self):
        # k messages at the last of D levels, µ = 1: D + k - 1 steps.
        assert expected_completion_model2_exact(
            [0, 0, 4], mu=1.0
        ) == pytest.approx(3 + 4 - 1)

    def test_empty_initial(self):
        assert expected_completion_exact((0, 0), mu=0.5) == 0.0

    def test_infinite_time_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_completion_exact((0, 2), mu=0.5, lam=0.0)

    def test_invalid_rates(self):
        with pytest.raises(ConfigurationError):
            expected_completion_exact((1,), mu=0.0)
        with pytest.raises(ConfigurationError):
            expected_completion_exact((1,), mu=0.5, lam=1.5)


class TestAgainstSimulation:
    @pytest.mark.parametrize(
        "levels,mu",
        [([2, 1], 0.5), ([0, 3], 0.3), ([1, 1, 1], 0.6)],
    )
    def test_model2_simulation_matches_exact(self, levels, mu):
        exact = expected_completion_model2_exact(levels, mu)
        mean, _ = mean_completion(
            lambda rng: simulate_model2(levels, mu, rng),
            replications=4_000,
            seed=9,
        )
        assert mean == pytest.approx(exact, rel=0.05)

    def test_model3_simulation_matches_exact(self):
        k, depth, mu, lam = 3, 3, 0.4, 0.2
        exact = expected_completion_model3_exact(k, depth, mu, lam)
        mean, _ = mean_completion(
            lambda rng: simulate_model3(k, depth, mu, lam, rng),
            replications=4_000,
            seed=10,
        )
        assert mean == pytest.approx(exact, rel=0.05)

    def test_model3_exact_below_theorem_43(self):
        """The Thm 4.3 (model 4) closed form upper-bounds model 3 exactly."""
        k, depth, mu, lam = 4, 3, 0.4, 0.2
        exact3 = expected_completion_model3_exact(k, depth, mu, lam)
        bound = model4_prediction(k, depth, mu=mu, lam=lam)
        assert exact3 <= bound


@given(
    st.lists(st.integers(0, 2), min_size=1, max_size=3),
    st.floats(0.2, 0.9),
)
@settings(max_examples=30, deadline=None)
def test_exact_monotone_in_mu(levels, mu):
    """Faster servers never slow completion (Lemma 4.13 in expectation)."""
    if sum(levels) == 0:
        return
    slower = expected_completion_exact(tuple(levels) + (0,), mu=mu)
    faster = expected_completion_exact(
        tuple(levels) + (0,), mu=min(1.0, mu + 0.05)
    )
    assert faster <= slower + 1e-9


@given(st.integers(1, 3), st.integers(1, 3))
@settings(max_examples=20, deadline=None)
def test_exact_monotone_in_load(extra, depth):
    """More messages never finish sooner (Lemma 4.9 in expectation)."""
    base = (0,) * depth + (1,)
    loaded = (0,) * depth + (1 + extra,)
    mu, lam = 0.5, 0.3
    assert expected_completion_exact(
        base, mu, lam
    ) <= expected_completion_exact(loaded, mu, lam)


class TestCompletionDistribution:
    def test_geometric_single_server(self):
        """One message, one level: P(T=t) = µ(1−µ)^(t−1)."""
        from repro.queueing import completion_time_distribution

        mu = 0.3
        pmf = completion_time_distribution((1, 0), mu, lam=0.0, t_max=30)
        assert pmf[0] == 0.0
        for t in range(1, 10):
            assert pmf[t] == pytest.approx(mu * (1 - mu) ** (t - 1))

    def test_mean_matches_expected_value(self):
        from repro.queueing import (
            completion_time_distribution,
            expected_completion_exact,
        )

        initial, mu, lam = (1, 0, 2), 0.5, 0.3
        pmf = completion_time_distribution(initial, mu, lam, t_max=400)
        assert sum(pmf) == pytest.approx(1.0, abs=1e-6)
        mean = sum(t * p for t, p in enumerate(pmf))
        assert mean == pytest.approx(
            expected_completion_exact(initial, mu, lam), rel=1e-4
        )

    def test_matches_simulation_histogram(self):
        from repro.analysis import total_variation_distance
        from repro.queueing import completion_time_distribution, simulate_model2

        levels, mu = [1, 1], 0.5
        pmf = completion_time_distribution(
            tuple(levels) + (0,), mu, lam=0.0, t_max=40
        )
        trials = 20_000
        counts = [0.0] * 41
        for seed in range(trials):
            steps = simulate_model2(levels, mu, random.Random(seed)).steps
            if steps <= 40:
                counts[steps] += 1
        empirical = [c / trials for c in counts]
        assert total_variation_distance(empirical, pmf) < 0.02

    def test_already_empty(self):
        from repro.queueing import completion_time_distribution

        assert completion_time_distribution((0, 0), 0.5, 0.0, 5) == [
            1.0,
            0.0,
            0.0,
            0.0,
            0.0,
            0.0,
        ]

    def test_infinite_rejected(self):
        from repro.queueing import completion_time_distribution

        with pytest.raises(ConfigurationError):
            completion_time_distribution((0, 3), 0.5, 0.0, 10)

    def test_negative_horizon_rejected(self):
        from repro.queueing import completion_time_distribution

        with pytest.raises(ConfigurationError):
            completion_time_distribution((1, 0), 0.5, 0.0, -1)
