"""Tests for the setup phase: leader election and distributed BFS (§2)."""

import random

import pytest

from repro.core import (
    default_election_rounds,
    elect_leader,
    expected_setup_slots,
    run_leader_election,
    run_setup,
)
from repro.core.bfs import expansion_parameters
from repro.errors import ConfigurationError
from repro.graphs import (
    bfs_levels,
    complete,
    grid,
    path,
    random_geometric,
    star,
)


class TestLeaderElection:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path(8),
            lambda: star(8),
            lambda: grid(3, 3),
            lambda: complete(6),
            lambda: random_geometric(15, 0.4, random.Random(1)),
        ],
        ids=["path", "star", "grid", "complete", "rgg"],
    )
    def test_unique_leader_is_max_id(self, graph_factory):
        graph = graph_factory()
        result = elect_leader(graph, seed=3)
        assert result.unique
        assert result.leaders == [max(graph.nodes)]
        assert result.agreed

    def test_single_station(self):
        result = run_leader_election(path(1), seed=0)
        assert result.leaders == [0]
        assert result.agreed

    def test_true_max_is_always_a_leader(self):
        """Even an unconverged run keeps the max believing in itself."""
        graph = path(12)
        result = run_leader_election(graph, seed=0, rounds=1)
        assert max(graph.nodes) in result.leaders

    def test_diameter_bound_shrinks_horizon(self):
        assert default_election_rounds(64, diameter_bound=3) < (
            default_election_rounds(64)
        )

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            default_election_rounds(0)

    def test_slots_accumulate_across_attempts(self):
        graph = grid(3, 3)
        single = run_leader_election(graph, seed=5)
        wrapped = elect_leader(graph, seed=5)
        assert wrapped.slots >= single.slots


class TestBfsSetup:
    @pytest.mark.parametrize(
        "graph_factory,root",
        [
            (lambda: path(8), 0),
            (lambda: path(8), 4),
            (lambda: star(9), 0),
            (lambda: star(9), 3),
            (lambda: grid(3, 4), 0),
            (lambda: random_geometric(20, 0.4, random.Random(3)), 7),
        ],
        ids=["path0", "path-mid", "star-center", "star-leaf", "grid", "rgg"],
    )
    def test_spanning_bfs_tree(self, graph_factory, root):
        graph = graph_factory()
        result = run_setup(graph, root=root, seed=11)
        tree = result.tree
        assert tree.root == root
        assert set(tree.nodes) == set(graph.nodes)
        # Tree edges are graph edges.
        for child, parent in tree.tree_edges():
            assert graph.has_edge(child, parent)

    @pytest.mark.parametrize("seed", range(4))
    def test_levels_are_true_distances(self, seed):
        """With 2·log n invocations per stage, failures are ~1/n: the tree
        is the true BFS tree in essentially every run."""
        graph = random_geometric(18, 0.42, random.Random(seed))
        result = run_setup(graph, root=0, seed=seed, require_true_bfs=True)
        assert result.is_true_bfs
        assert result.tree.level == bfs_levels(graph, 0)

    def test_single_station(self):
        result = run_setup(path(1), root=0, seed=0)
        assert result.tree.num_nodes == 1
        assert result.slots == 0

    def test_two_stations(self):
        result = run_setup(path(2), root=1, seed=0)
        assert result.tree.parent[0] == 1
        assert result.tree.level[0] == 1

    def test_unknown_root(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run_setup(path(3), root=9, seed=0)

    def test_tree_infos_match_tree(self):
        graph = grid(3, 3)
        result = run_setup(graph, root=0, seed=2)
        for node, info in result.tree_infos.items():
            assert info.parent == result.tree.parent[node]
            assert info.level == result.tree.level[node]
            assert info.root == 0

    def test_setup_time_within_las_vegas_budget(self):
        """Measured slots stay within 2× the §2 reference (per attempt)."""
        graph = grid(4, 4)
        levels = bfs_levels(graph, 0)
        budget = 2 * expected_setup_slots(
            graph.num_nodes, max(levels.values()), graph.max_degree()
        )
        result = run_setup(graph, root=0, seed=6)
        assert result.slots <= budget * result.attempts

    def test_deterministic_given_seed(self):
        graph = grid(3, 3)
        a = run_setup(graph, root=0, seed=9)
        b = run_setup(graph, root=0, seed=9)
        assert a.slots == b.slots
        assert a.tree.parent == b.tree.parent


class TestExpansionParameters:
    def test_budget_matches_paper(self):
        budget, invocations = expansion_parameters(16, 8)
        assert budget == 6  # 2·ceil(log2 8)
        assert invocations == 8  # 2·ceil(log2 16)

    def test_minimums(self):
        budget, invocations = expansion_parameters(1, 0)
        assert budget >= 2 and invocations >= 2


class TestBitElection:
    """The bitwise tournament election (the [4]-shaped substitute)."""

    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path(12),
            lambda: star(9),
            lambda: grid(4, 4),
            lambda: random_geometric(18, 0.4, random.Random(2)),
        ],
        ids=["path", "star", "grid", "rgg"],
    )
    def test_unique_leader_and_agreement(self, graph_factory):
        from repro.core import run_bit_election

        graph = graph_factory()
        result = run_bit_election(graph, seed=5)
        assert result.leaders == [max(graph.nodes)]
        assert result.agreed

    def test_every_station_learns_the_max(self):
        from repro.core.leader import BitElectionProcess, run_bit_election

        graph = grid(3, 3)
        result = run_bit_election(graph, seed=7)
        assert result.true_max == 8

    def test_known_diameter_shrinks_cost(self):
        from repro.core import run_bit_election

        graph = star(16)
        loose = run_bit_election(graph, seed=1)
        tight = run_bit_election(graph, seed=1, diameter_bound=2)
        assert tight.slots < loose.slots
        assert tight.leaders == loose.leaders == [15]

    def test_single_station(self):
        from repro.core import run_bit_election

        result = run_bit_election(path(1), seed=0)
        assert result.leaders == [0]

    def test_non_integer_ids_rejected(self):
        from repro.core import run_bit_election
        from repro.graphs import Graph

        graph = Graph.from_edges([("a", "b")])
        with pytest.raises(ConfigurationError):
            run_bit_election(graph, seed=0)

    def test_cost_scales_with_id_bits(self):
        from repro.core import run_bit_election

        graph = path(8)
        narrow = run_bit_election(graph, seed=3)  # ids < 8 -> 3 bits
        wide = run_bit_election(graph, seed=3, id_bits=12)
        assert wide.slots == 4 * narrow.slots
        assert wide.leaders == narrow.leaders
