"""Model-compliance tests: the protocols respect §1.1's constraints.

* Messages are O(log n) bits (a constant number of IDs/levels/flags).
* No protocol uses collision detection (receivers only ever see payloads).
* Transmit/receive exclusivity per channel is enforced by the engine.
* Protocols survive outside-the-model failures only in non-strict mode.
"""

import random

import pytest

from repro.core import run_collection
from repro.core.messages import (
    AckMessage,
    BroadcastMessage,
    BroadcastSubmission,
    CheckpointAck,
    DataMessage,
    JoinMessage,
    LeaderMessage,
    ResendRequest,
    TokenMessage,
    is_protocol_message,
    message_bits,
)
from repro.errors import SimulationTimeout
from repro.graphs import path, reference_bfs_tree, star
from repro.radio import (
    BernoulliLinkLoss,
    ComposedFailures,
    CrashSchedule,
    EventTrace,
    PermanentCrashes,
    RadioNetwork,
)


class TestMessageSizes:
    @pytest.mark.parametrize(
        "message",
        [
            DataMessage(
                msg_id=(1, 2),
                origin=1,
                hop_sender=1,
                hop_dest=2,
                dest_address=3,
                payload="p",
            ),
            AckMessage(msg_id=(1, 2), hop_sender=2, hop_dest=1),
            JoinMessage(sender=4, level=2),
            LeaderMessage(sender=1, best_id=9),
            BroadcastMessage(seq=7, origin=3, payload="x", sender_level=2),
            TokenMessage(holder=1, next_holder=2, traversal=1),
            BroadcastSubmission(origin=3, body="payload"),
            CheckpointAck(origin=3, checkpoint=2),
            ResendRequest(requester=3, seq=7),
        ],
    )
    def test_constant_number_of_words(self, message):
        """Each packet carries O(1) IDs/levels/flags = O(log n) bits."""
        assert message_bits(message) <= 10
        assert is_protocol_message(message)

    def test_non_protocol_payload(self):
        assert not is_protocol_message("random string")


class TestCollisionOpacity:
    def test_collision_and_silence_are_indistinguishable(self):
        """The engine gives receivers no callback on collisions — the only
        signal is the *absence* of on_receive, same as silence."""
        from repro.radio import ScriptedProcess, Transmission

        g = star(3)
        trace = EventTrace()
        net = RadioNetwork(g, trace=trace)
        center = ScriptedProcess(0)
        net.attach(center)
        net.attach(ScriptedProcess(1, {0: Transmission("a")}))
        net.attach(ScriptedProcess(2, {0: Transmission("b")}))
        net.step()  # collision at 0
        net.step()  # silence at 0
        assert center.heard == []  # identical observable in both slots
        # ... although the omniscient trace knows the difference:
        assert len(trace.collisions) == 1


class TestFailureInjection:
    def test_collection_times_out_when_cut_by_crash(self):
        """A crashed relay on the only path stalls collection (and the
        Las-Vegas driver surfaces it as a timeout, not silent loss)."""
        graph = path(4)
        tree = reference_bfs_tree(graph, 0)
        from repro.core.collection import build_collection_network

        network, processes, _ = build_collection_network(
            graph, tree, {3: ["m"]}, seed=1
        )
        network.failures = PermanentCrashes({1})
        with pytest.raises(SimulationTimeout):
            network.run(
                5_000, until=lambda n: len(processes[0].delivered) >= 1
            )

    def test_collection_survives_transient_crash(self):
        """The relay recovers: resend-until-ack rides out the outage."""
        graph = path(4)
        tree = reference_bfs_tree(graph, 0)
        from repro.core.collection import build_collection_network

        network, processes, _ = build_collection_network(
            graph, tree, {3: ["m"]}, seed=1, strict=False
        )
        network.failures = CrashSchedule({1: [(0, 400)]})
        network.run(
            100_000, until=lambda n: len(processes[0].delivered) >= 1
        )
        assert processes[0].delivered[0].payload == "m"

    def test_link_loss_breaks_ack_determinism_but_not_delivery(self):
        """Outside the model (fading), Thm 3.1 can fail — duplicates appear
        — but non-strict transport still delivers at least once."""
        graph = path(5)
        tree = reference_bfs_tree(graph, 0)
        from repro.core.collection import build_collection_network

        duplicates_total = 0
        delivered_ok = 0
        for seed in range(8):
            network, processes, _ = build_collection_network(
                graph, tree, {4: ["a", "b", "c"]}, seed=seed, strict=False
            )
            network.failures = BernoulliLinkLoss(
                0.15, random.Random(seed + 50)
            )
            try:
                network.run(
                    300_000,
                    until=lambda n: len(
                        {m.msg_id for m in processes[0].delivered}
                    )
                    >= 3,
                )
            except SimulationTimeout:
                continue
            delivered_ok += 1
            duplicates_total += sum(
                p.lane.duplicates_seen for p in processes.values()
            )
        assert delivered_ok >= 6  # loss slows but rarely halts progress
        assert duplicates_total > 0  # ...and Thm 3.1's premise is indeed load-bearing

    def test_composed_failures(self):
        model = ComposedFailures(
            [PermanentCrashes({1}), PermanentCrashes({2}, from_slot=10)]
        )
        assert model.node_down(1, 0)
        assert not model.node_down(2, 5)
        assert model.node_down(2, 10)

    def test_crash_schedule_validation(self):
        with pytest.raises(ValueError):
            CrashSchedule({0: [(5, 5)]})

    def test_link_loss_validation(self):
        with pytest.raises(ValueError):
            BernoulliLinkLoss(1.5, random.Random(0))


class TestStrictModeGuards:
    def test_strict_run_collection_never_raises_in_model(self):
        """In the failure-free model, strict mode is exactly as permissive:
        many seeds, zero protocol errors."""
        graph = star(8)
        tree = reference_bfs_tree(graph, 0)
        for seed in range(10):
            result = run_collection(
                graph,
                tree,
                {n: ["z"] for n in range(1, 8)},
                seed=seed,
                strict=True,
            )
            assert len(result.delivered) == 7
