"""The fleet backend: lease lifecycle, multi-worker draining, merging.

Lease tests exercise the protocol directly (claim races, heartbeat
freshness, expiry reclaim, steal-budget exhaustion, corrupt records);
worker tests run two in-process :class:`FleetWorker` instances against
one queue directory and assert the exactly-once contract — every task
executed once, none lost, none double-counted — plus the crash-consistent
replay of a host that died between committing a result and retiring its
task.  Everything runs with injected task functions; no subprocesses
(the chaos harness covers the real multi-process scenario).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.runner import (
    FaultPolicy,
    FleetQueue,
    FleetWorker,
    LeaseDir,
    LeaseObserver,
    SweepCheckpoint,
    fleet_report,
    fleet_status,
    merge_task_records,
    run_tasks,
    task_grid,
)
from repro.runner.atomicio import atomic_write_json, atomic_write_text

VERSION = "vtest"


def _grid(n: int = 4, exp_id: str = "EF"):
    cases = [{"idx": i} for i in range(n)]
    return task_grid(exp_id, cases, 1, seed=11)


def _value(spec) -> dict:
    return {"value": spec.seed % 97, "idx": spec.params["idx"]}


def _record(spec) -> dict:
    return {
        "spec": spec.to_record(),
        "metrics": _value(spec),
        "wall_time": 0.0,
        "version": VERSION,
    }


# ----------------------------------------------------------------------
# Atomic writes (same-directory staging)
# ----------------------------------------------------------------------


class TestAtomicWrites:
    def test_json_roundtrip_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "deep" / "out.json"
        atomic_write_json(target, {"b": 2, "a": 1}, indent=2)
        assert json.loads(target.read_text("utf-8")) == {"a": 1, "b": 2}
        assert target.read_text("utf-8").endswith("\n")
        # The staging temp lived next to the target and is gone.
        assert sorted(p.name for p in target.parent.iterdir()) == ["out.json"]

    def test_text_overwrites_atomically(self, tmp_path):
        target = tmp_path / "note.txt"
        atomic_write_text(target, "one")
        atomic_write_text(target, "two")
        assert target.read_text("utf-8") == "two"
        assert list(tmp_path.iterdir()) == [target]


# ----------------------------------------------------------------------
# Lease lifecycle
# ----------------------------------------------------------------------


class TestLeases:
    def test_claim_is_exclusive_under_contention(self, tmp_path):
        leases = LeaseDir(tmp_path / "leases")
        wins = []
        barrier = threading.Barrier(8)

        def contender(name):
            barrier.wait()
            if leases.claim("k1", name):
                wins.append(name)

        threads = [
            threading.Thread(target=contender, args=(f"h{i}",))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        record = leases.read("k1")
        assert record is not None and record.host == wins[0]
        assert record.steal_count == 0

    def test_heartbeat_keeps_lease_from_going_stale(self, tmp_path):
        leases = LeaseDir(tmp_path / "leases")
        observer = LeaseObserver(ttl=0.2)
        assert leases.claim("k1", "alpha")
        for _ in range(4):
            time.sleep(0.08)
            assert leases.heartbeat("k1")
            assert not observer.stale("k1", leases.mtime_ns("k1"))
        # Heartbeats stop: one full TTL of unchanged mtime makes it stale.
        observer.stale("k1", leases.mtime_ns("k1"))
        time.sleep(0.25)
        assert observer.stale("k1", leases.mtime_ns("k1"))

    def test_expiry_reclaim_increments_steal_count(self, tmp_path):
        leases = LeaseDir(tmp_path / "leases")
        observer = LeaseObserver(ttl=0.15)
        assert leases.claim("k1", "deadhost")
        assert leases.reclaim("k1", "alpha", observer) is None  # first look
        time.sleep(0.2)
        stolen = leases.reclaim("k1", "alpha", observer)
        assert stolen is not None and stolen.host == "deadhost"
        assert stolen.steal_count == 0
        fresh = leases.read("k1")
        assert fresh.host == "alpha" and fresh.steal_count == 1

    def test_reclaim_is_immune_to_clock_skew(self, tmp_path):
        # The dead host stamped its lease with a clock 10 minutes wrong;
        # staleness is judged by mtime *movement* on the observer's own
        # monotonic clock, so the skew changes nothing.
        skewed = LeaseDir(tmp_path / "leases", clock_skew=600.0)
        assert skewed.claim("k1", "skewhost")
        local = LeaseDir(tmp_path / "leases")
        observer = LeaseObserver(ttl=0.15)
        assert local.reclaim("k1", "alpha", observer) is None
        time.sleep(0.2)
        stolen = local.reclaim("k1", "alpha", observer)
        assert stolen is not None and stolen.host == "skewhost"
        # And a *live* skewed host is never mistaken for dead while it
        # keeps heartbeating.
        assert skewed.claim("k2", "skewhost")
        fresh_obs = LeaseObserver(ttl=0.2)
        for _ in range(3):
            time.sleep(0.08)
            assert skewed.heartbeat("k2")
            assert not fresh_obs.stale("k2", local.mtime_ns("k2"))

    def test_corrupt_lease_reads_none_and_still_reclaims(self, tmp_path):
        leases = LeaseDir(tmp_path / "leases")
        observer = LeaseObserver(ttl=0.15)
        assert leases.claim("k1", "deadhost")
        leases.path("k1").write_bytes(b"\x00garbage{{{not json")
        assert leases.read("k1") is None
        assert leases.reclaim("k1", "alpha", observer) is None
        time.sleep(0.2)
        stolen = leases.reclaim("k1", "alpha", observer)
        assert stolen is not None  # ownership is the file, not its bytes
        fresh = leases.read("k1")
        assert fresh.host == "alpha" and fresh.steal_count == 1

    def test_release_and_tombstones_hidden_from_keys(self, tmp_path):
        leases = LeaseDir(tmp_path / "leases")
        assert leases.claim("k1", "alpha")
        assert leases.keys() == ["k1"]
        leases.release("k1")
        assert leases.keys() == []
        leases.release("k1")  # idempotent


# ----------------------------------------------------------------------
# Queue submit / status
# ----------------------------------------------------------------------


class TestQueue:
    def test_submit_status_roundtrip_and_idempotence(self, tmp_path):
        queue = FleetQueue(tmp_path / "q")
        specs = _grid(4)
        assert queue.submit(specs, version=VERSION) == 4
        assert queue.submit(specs, version=VERSION) == 0  # resubmit: no-op
        status = fleet_status(queue)
        assert status.total == 4 and status.pending == 4
        assert status.completed == 0 and not status.done
        assert status.exp_id == "EF" and status.version == VERSION

    def test_submit_rejects_empty_and_mixed_grids(self, tmp_path):
        queue = FleetQueue(tmp_path / "q")
        with pytest.raises(ConfigurationError):
            queue.submit([], version=VERSION)
        mixed = _grid(2, exp_id="EF") + _grid(2, exp_id="EG")
        with pytest.raises(ConfigurationError):
            queue.submit(mixed, version=VERSION)

    def test_status_rejects_a_non_queue_directory(self, tmp_path):
        with pytest.raises(ConfigurationError):
            fleet_status(tmp_path)


# ----------------------------------------------------------------------
# Workers
# ----------------------------------------------------------------------


class TestWorkers:
    def test_two_workers_drain_one_queue_exactly_once(self, tmp_path):
        queue = FleetQueue(tmp_path / "q")
        specs = _grid(8)
        queue.submit(specs, version=VERSION)
        keys = [spec.key(VERSION) for spec in specs]

        executions = []
        lock = threading.Lock()

        def run_fn(spec):
            with lock:
                executions.append(spec.key(VERSION))
            time.sleep(0.01)  # hold the lease long enough to contend
            return _value(spec)

        workers = [
            FleetWorker(
                queue, host, run_fn=run_fn, ttl=10.0, poll_interval=0.01
            )
            for host in ("alpha", "beta")
        ]
        threads = [threading.Thread(target=w.run) for w in workers]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Exactly once: every task executed, none twice, queue empty.
        assert sorted(executions) == sorted(keys)
        assert queue.pending_keys() == []
        assert queue.leases().keys() == []
        merged = fleet_report(queue)
        assert len(merged.outcomes) == 8
        assert merged.executed == 8 and merged.duplicates_merged == 0
        assert merged.hosts_seen == 2 and merged.host_failures == 0
        status = fleet_status(queue)
        assert status.done and status.completed == 8
        assert sum(w.report.executed for w in workers) == 8

    def test_fleet_report_matches_inline_run_bitwise(self, tmp_path):
        specs = _grid(6)
        inline = run_tasks(specs, _value, version=VERSION)

        queue = FleetQueue(tmp_path / "q")
        queue.submit(specs, version=VERSION)
        FleetWorker(queue, "solo", run_fn=_value).run()
        merged = fleet_report(queue)

        assert merged.summary_table() == inline.summary_table()
        inline_by_key = {o.key: dict(o.metrics) for o in inline.outcomes}
        merged_by_key = {o.key: dict(o.metrics) for o in merged.outcomes}
        assert merged_by_key == inline_by_key
        # Grid order is restored from the manifest, not journal order.
        assert [o.key for o in merged.outcomes] == [
            o.key for o in inline.outcomes
        ]

    def test_dead_host_lease_reclaimed_and_task_finished(self, tmp_path):
        queue = FleetQueue(tmp_path / "q")
        specs = _grid(3)
        queue.submit(specs, version=VERSION)
        victim_key = specs[0].key(VERSION)
        # A host claimed a task and died without journaling anything.
        queue.leases().claim(victim_key, "deadhost")

        worker = FleetWorker(
            queue, "alpha", run_fn=_value, ttl=0.15, poll_interval=0.03
        )
        stats = worker.run()
        assert stats.executed == 3 and stats.lease_reclaims == 1
        assert queue.pending_keys() == []
        assert queue.leases().keys() == []
        merged = fleet_report(queue)
        assert len(merged.outcomes) == 3
        assert merged.lease_reclaims == 1 and merged.host_failures == 1
        status = fleet_status(queue)
        assert status.lease_reclaims == 1 and status.host_failures == 1

    def test_steal_budget_exhaustion_quarantines(self, tmp_path):
        queue = FleetQueue(tmp_path / "q")
        specs = _grid(1)
        queue.submit(specs, version=VERSION)
        key = specs[0].key(VERSION)
        # The lease has already been stolen max_retries times: hosts
        # keep dying on this task.  The next reclaim exhausts the shared
        # retry budget and quarantines instead of executing.
        policy = FaultPolicy(max_retries=2)
        queue.leases().claim(key, "deadhost", steal_count=2)

        worker = FleetWorker(
            queue, "alpha", run_fn=_value, policy=policy,
            ttl=0.15, poll_interval=0.03,
        )
        stats = worker.run()
        assert stats.executed == 0 and stats.quarantined == 1
        assert stats.lease_reclaims == 1
        quarantined = queue.quarantined()
        assert list(quarantined) == [key]
        assert quarantined[key]["category"] == "crash"
        assert queue.pending_keys() == [] and queue.leases().keys() == []
        merged = fleet_report(queue)
        assert len(merged.quarantined) == 1 and not merged.outcomes
        status = fleet_status(queue)
        assert status.quarantined == 1 and status.done

    def test_failing_task_retries_then_quarantines(self, tmp_path):
        queue = FleetQueue(tmp_path / "q")
        specs = _grid(2)
        queue.submit(specs, version=VERSION)
        attempts = []

        def run_fn(spec):
            if spec.params["idx"] == 0:
                attempts.append(spec.params["idx"])
                raise RuntimeError("permanently broken")
            return _value(spec)

        worker = FleetWorker(
            queue, "alpha", run_fn=run_fn,
            policy=FaultPolicy(max_retries=1, backoff_base=0.0, jitter=0.0),
        )
        stats = worker.run()
        assert len(attempts) == 2  # first try + one retry
        assert stats.executed == 1 and stats.quarantined == 1
        assert stats.retries == 1
        merged = fleet_report(queue)
        assert len(merged.outcomes) == 1
        assert merged.quarantined[0].category == "error"

    def test_commit_then_crash_replays_as_cache_hit(self, tmp_path):
        # A host died after committing a result to the shared cache and
        # journaling it, but before retiring the task file and releasing
        # the lease.  The reclaimer must replay the cache hit (never
        # recompute), and the merge must fold the duplicate journal
        # record away — counted, not double-counted.
        queue = FleetQueue(tmp_path / "q")
        specs = _grid(4)
        queue.submit(specs, version=VERSION)
        key0 = specs[0].key(VERSION)
        committed = _record(specs[0])
        queue.cache().put(key0, committed)
        journal = SweepCheckpoint(queue.journal_path("deadhost"))
        journal.append_event("host_start", host="deadhost", time_unix=0.0)
        journal.append_event(
            "outcome", key=key0, record=committed, host="deadhost",
            cached=False, source="fresh", time_unix=0.0,
        )
        journal.close()
        queue.leases().claim(key0, "deadhost")

        executed = []

        def run_fn(spec):
            executed.append(spec.key(VERSION))
            return _value(spec)

        stats = FleetWorker(
            queue, "alpha", run_fn=run_fn, ttl=0.15, poll_interval=0.03
        ).run()
        assert key0 not in executed  # replayed, not recomputed
        assert stats.cache_hits == 1 and stats.executed == 3
        merged = fleet_report(queue)
        assert len(merged.outcomes) == 4
        assert [o.key for o in merged.outcomes].count(key0) == 1
        assert merged.duplicates_merged == 1
        status = fleet_status(queue)
        assert status.duplicates_merged == 1 and status.done

    def test_moot_lease_of_retired_task_is_reaped(self, tmp_path):
        # Killed after retiring the task file but before releasing the
        # lease: the work is committed, so the lease is cleared without
        # waiting out a TTL.
        queue = FleetQueue(tmp_path / "q")
        specs = _grid(2)
        queue.submit(specs, version=VERSION)
        key0 = specs[0].key(VERSION)
        queue.cache().put(key0, _record(specs[0]))
        journal = SweepCheckpoint(queue.journal_path("deadhost"))
        journal.append_event(
            "outcome", key=key0, record=_record(specs[0]),
            host="deadhost", cached=False, source="fresh", time_unix=0.0,
        )
        journal.close()
        queue.remove_task(key0)
        queue.leases().claim(key0, "deadhost")

        stats = FleetWorker(
            queue, "alpha", run_fn=_value, ttl=30.0, poll_interval=0.03
        ).run()
        # TTL is 30s but the worker finished instantly: moot leases are
        # reaped on sight, not reclaimed on expiry.
        assert stats.wall_time < 5.0
        assert queue.leases().keys() == []
        assert len(fleet_report(queue).outcomes) == 2

    def test_worker_rejects_nonpositive_ttl(self, tmp_path):
        queue = FleetQueue(tmp_path / "q")
        queue.submit(_grid(1), version=VERSION)
        with pytest.raises(ConfigurationError):
            FleetWorker(queue, "alpha", ttl=0.0)


# ----------------------------------------------------------------------
# Multi-writer journal hardening
# ----------------------------------------------------------------------


class TestJournalMerging:
    def test_merge_task_records_last_write_wins(self):
        records = [
            {"key": "a", "metrics": {"v": 1}},
            {"key": "b", "metrics": {"v": 2}},
            {"key": "a", "metrics": {"v": 3}},
            {"sequence": 9},  # keyless records pass through verbatim
        ]
        merged, duplicates = merge_task_records(records)
        assert duplicates == 1
        by_key = {r["key"]: r for r in merged if "key" in r}
        assert by_key["a"]["metrics"] == {"v": 3}
        assert any("sequence" in r for r in merged)

    def test_checkpoint_counts_duplicates_and_surfaces_in_report(
        self, tmp_path
    ):
        specs = _grid(3)
        keys = [spec.key(VERSION) for spec in specs]
        path = tmp_path / "ckpt.jsonl"
        checkpoint = SweepCheckpoint(path)
        checkpoint.append_outcome(keys[0], _record(specs[0]))
        checkpoint.append_outcome(keys[0], _record(specs[0]))  # duplicate
        checkpoint.append_event("lease_reclaim", key=keys[1], host="h")
        checkpoint.close()

        completed, quarantined = checkpoint.load()
        assert checkpoint.duplicates == 1
        assert list(completed) == [keys[0]] and not quarantined

        report = run_tasks(
            specs, _value, checkpoint=path, version=VERSION
        )
        assert report.duplicates_merged == 1
        assert report.resumed == 1 and report.executed == 2
        assert report.failure_summary()["duplicates_merged"] == 1

    def test_checkpoint_outcome_supersedes_quarantine(self, tmp_path):
        # Another fleet host finished the task after all: the later
        # outcome wins over the earlier quarantine, in either order.
        spec = _grid(1)[0]
        key = spec.key(VERSION)
        path = tmp_path / "ckpt.jsonl"
        checkpoint = SweepCheckpoint(path)
        checkpoint.append_quarantine(
            key,
            {"spec": spec.to_record(), "key": key, "label": spec.label(),
             "category": "crash", "attempts": 3, "detail": "host died"},
        )
        checkpoint.append_outcome(key, _record(spec))
        checkpoint.close()
        completed, quarantined = checkpoint.load()
        assert list(completed) == [key] and not quarantined
        assert checkpoint.duplicates == 1

    def test_interleaved_corrupt_interior_line_tolerated_nonstrict(
        self, tmp_path
    ):
        from repro.runner.telemetry import _read_jsonl

        path = tmp_path / "merged.jsonl"
        path.write_text(
            '{"key": "a"}\n{"key": "b", "torn...\n{"key": "c"}\n',
            encoding="utf-8",
        )
        with pytest.raises(ValueError):
            _read_jsonl(path, strict=True)
        records = _read_jsonl(path, strict=False)
        assert [r["key"] for r in records] == ["a", "c"]
