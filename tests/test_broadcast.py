"""Tests for k-broadcast (§6): pipelined distribution with NACK recovery."""

import random

import pytest

from repro.core import run_broadcast, superphase_invocations
from repro.core.broadcast import EOS, build_broadcast_network
from repro.errors import ConfigurationError
from repro.graphs import (
    balanced_tree,
    grid,
    path,
    random_geometric,
    reference_bfs_tree,
    star,
)


def tree_of(graph, root=0):
    return reference_bfs_tree(graph, root)


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path(7),
            lambda: star(8),
            lambda: grid(3, 3),
            lambda: balanced_tree(2, 3),
            lambda: random_geometric(16, 0.45, random.Random(5)),
        ],
        ids=["path", "star", "grid", "tree", "rgg"],
    )
    def test_every_station_gets_every_message(self, graph_factory):
        graph = graph_factory()
        tree = tree_of(graph)
        submissions = {
            list(graph.nodes)[1]: ["a", "b"],
            list(graph.nodes)[-1]: ["c"],
        }
        result = run_broadcast(graph, tree, submissions, seed=4)
        assert result.delivered_everywhere
        assert result.messages == 3

    def test_root_sourced_broadcast(self):
        graph = path(6)
        tree = tree_of(graph)
        result = run_broadcast(graph, tree, {0: ["r1", "r2"]}, seed=1)
        assert result.delivered_everywhere

    def test_messages_delivered_in_sequence_order(self):
        graph = path(5)
        tree = tree_of(graph)
        network, processes = build_broadcast_network(graph, tree, seed=7)
        for payload in ["m0", "m1", "m2"]:
            processes[0].submit(payload)
        network.run(
            200_000,
            until=lambda n: all(
                p.has_prefix(3) for p in processes.values()
            ),
            check_every=4,
        )
        for process in processes.values():
            ordered = process.delivered_in_order()
            assert [m.seq for m in ordered] == [0, 1, 2]
            assert [m.payload for m in ordered] == ["m0", "m1", "m2"]

    def test_multi_source_sequencing_is_global(self):
        """All stations agree on one global message order (root order)."""
        graph = star(6)
        tree = tree_of(graph)
        submissions = {n: [f"s{n}"] for n in range(1, 6)}
        network, processes = build_broadcast_network(graph, tree, seed=9)
        for node, payloads in submissions.items():
            for p in payloads:
                processes[node].submit(p)
        network.run(
            400_000,
            until=lambda n: all(
                p.has_prefix(5) for p in processes.values()
            ),
            check_every=4,
        )
        orders = {
            tuple(m.payload for m in p.delivered_in_order())
            for p in processes.values()
        }
        assert len(orders) == 1  # identical everywhere

    def test_origin_preserved(self):
        graph = path(4)
        tree = tree_of(graph)
        network, processes = build_broadcast_network(graph, tree, seed=3)
        processes[3].submit("from-leaf")
        network.run(
            200_000,
            until=lambda n: all(
                p.has_prefix(1) for p in processes.values()
            ),
            check_every=4,
        )
        for process in processes.values():
            assert process.received[0].origin == 3

    def test_empty_workload_trivially_complete(self):
        graph = path(4)
        tree = tree_of(graph)
        result = run_broadcast(graph, tree, {}, seed=0)
        assert result.delivered_everywhere
        assert result.slots == 0

    def test_unknown_station_rejected(self):
        graph = path(3)
        with pytest.raises(ConfigurationError):
            run_broadcast(graph, tree_of(graph), {42: ["x"]}, seed=0)


class TestGapRecovery:
    def test_tiny_superphases_force_losses_and_recovery(self):
        """invocations=1 gives each hop only one Decay try per superphase;
        with several same-level relays contending (layered band), pipeline
        misses are common — the NACK path must heal them all."""
        from repro.graphs import layered_band

        graph = layered_band(4, 3)
        tree = tree_of(graph)
        result = run_broadcast(
            graph,
            tree,
            {0: [f"m{i}" for i in range(6)]},
            seed=2,
            invocations=1,
        )
        assert result.delivered_everywhere

    def test_resends_counted(self):
        from repro.graphs import layered_band

        graph = layered_band(5, 3)
        tree = tree_of(graph)
        total_resends = 0
        for seed in range(4):
            result = run_broadcast(
                graph,
                tree,
                {0: [f"m{i}" for i in range(8)]},
                seed=seed,
                invocations=1,
            )
            assert result.delivered_everywhere
            total_resends += result.resends
        assert total_resends > 0  # contention with one try/hop loses some

    def test_path_never_loses(self):
        """On a path every hop has a single transmitter, so even one
        invocation per superphase delivers without any NACK traffic."""
        graph = path(10)
        tree = tree_of(graph)
        result = run_broadcast(
            graph,
            tree,
            {0: [f"m{i}" for i in range(8)]},
            seed=1,
            invocations=1,
        )
        assert result.delivered_everywhere
        assert result.resends == 0

    def test_default_invocations_rarely_need_resends(self):
        graph = grid(3, 3)
        tree = tree_of(graph)
        result = run_broadcast(
            graph, tree, {0: [f"m{i}" for i in range(5)]}, seed=3
        )
        assert result.delivered_everywhere
        assert result.resends <= 2


class TestCheckpointing:
    def test_checkpoint_acks_collected(self):
        graph = path(5)
        tree = tree_of(graph)
        network, processes = build_broadcast_network(
            graph, tree, seed=5, checkpoint_interval=2
        )
        for payload in ["a", "b", "c", "d"]:
            processes[0].submit(payload)
        network.run(
            400_000,
            until=lambda n: all(
                p.has_prefix(4) for p in processes.values()
            )
            and len(processes[0].checkpoint_acks.get(2, ())) >= 4,
            check_every=8,
        )
        acks = processes[0].checkpoint_acks
        assert set(acks.get(1, ())) == {1, 2, 3, 4}
        assert set(acks.get(2, ())) == {1, 2, 3, 4}


class TestSuperphaseArithmetic:
    def test_invocations_formula(self):
        assert superphase_invocations(2) == 2
        assert superphase_invocations(16) == 8
        assert superphase_invocations(17) == 10

    def test_eos_announcements_carry_count(self):
        graph = path(3)
        tree = tree_of(graph)
        network, processes = build_broadcast_network(graph, tree, seed=0)
        processes[0].submit("only")
        network.run(
            100_000,
            until=lambda n: all(
                p.has_prefix(1) for p in processes.values()
            )
            and processes[2].announced_count >= 1,
            check_every=4,
        )
        assert processes[1].announced_count == 1
        assert processes[2].announced_count == 1
        # EOS itself is never stored as a message.
        for process in processes.values():
            assert all(m.payload != EOS for m in process.received.values())
