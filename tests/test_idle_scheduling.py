"""The idle-aware scalar slot loop: quiet_until contract and wake heap.

The engine may skip a process's callbacks exactly while a
``quiet_until`` declaration is outstanding and nothing was delivered to
it; these tests pin that contract from both sides — silent slots are
skipped, receptions and external :meth:`Process.wake` pokes re-wake
immediately, failure models disable the fast path, and protocol
outcomes are bit-identical with the fast path on or off.
"""

from types import MappingProxyType

import pytest

from repro.core import (
    CollectionProcess,
    SlotStructure,
    build_collection_network,
    run_collection,
)
from repro.core.transport import TransportLane
from repro.graphs import balanced_tree, layered_band, path, reference_bfs_tree
from repro.radio import (
    PermanentCrashes,
    Process,
    RadioNetwork,
    ScriptedProcess,
    SilentProcess,
    Transmission,
)
from repro.radio.process import QUIET_FOREVER
from repro.rng import RngFactory


class CountingProcess(Process):
    """Polled-callback counter with a configurable quiet declaration."""

    def __init__(self, node_id, period=None):
        super().__init__(node_id)
        self.period = period  # poll only on multiples of `period`
        self.polled = []
        self.ended = []
        self.received = []

    def on_slot(self, slot):
        self.polled.append(slot)
        return None

    def on_slot_end(self, slot):
        self.ended.append(slot)

    def on_receive(self, slot, channel, payload):
        self.received.append((slot, payload))

    def quiet_until(self, slot):
        if self.period is None:
            return slot
        return slot + (-slot % self.period)


class TestQuietUntil:
    def test_default_is_polled_every_slot(self):
        net = RadioNetwork(path(2))
        procs = [CountingProcess(0), CountingProcess(1)]
        for proc in procs:
            net.attach(proc)
        net.run(20)
        assert procs[0].polled == list(range(20))
        assert procs[0].ended == list(range(20))

    def test_periodic_declaration_skips_silent_slots(self):
        net = RadioNetwork(path(2))
        periodic = CountingProcess(0, period=10)
        net.attach(periodic)
        net.attach(CountingProcess(1))
        net.run(100)
        assert periodic.polled == list(range(0, 100, 10))
        # on_slot_end is skipped on exactly the same slots.
        assert periodic.ended == periodic.polled

    def test_legacy_toggle_polls_everyone(self):
        net = RadioNetwork(path(2))
        periodic = CountingProcess(0, period=10)
        net.attach(periodic)
        net.attach(CountingProcess(1))
        net.idle_scheduling = False
        net.run(100)
        assert periodic.polled == list(range(100))

    def test_reception_wakes_a_sleeping_process(self):
        # Node 1 sleeps forever; node 0 transmits in slot 5.
        net = RadioNetwork(path(2))
        sleeper = CountingProcess(1, period=QUIET_FOREVER)
        net.attach(ScriptedProcess(0, {5: Transmission("ping")}))
        net.attach(sleeper)
        net.run(10)
        assert sleeper.received == [(5, "ping")]
        # The reception slot runs its end-of-slot bookkeeping...
        assert 5 in sleeper.ended
        # ...but the silent slots around it stayed skipped.
        assert sleeper.polled == [0]
        assert 4 not in sleeper.ended and 6 not in sleeper.ended

    def test_external_wake_revokes_declaration(self):
        net = RadioNetwork(path(2))
        sleeper = CountingProcess(0, period=QUIET_FOREVER)
        net.attach(sleeper)
        net.attach(CountingProcess(1))
        net.run(5)
        assert sleeper.polled == [0]
        sleeper.period = None  # becomes chatty again...
        sleeper.wake()  # ...and revokes the outstanding declaration
        net.run(3)
        assert sleeper.polled == [0, 5, 6, 7]

    def test_failure_model_disables_fast_path(self):
        # Crash schedules are consulted per station per slot, so the
        # engine must fall back to polling everyone.
        net = RadioNetwork(
            path(3), failures=PermanentCrashes({2}, from_slot=4)
        )
        periodic = CountingProcess(0, period=10)
        net.attach(periodic)
        net.attach(CountingProcess(1))
        net.attach(CountingProcess(2))
        net.run(20)
        assert periodic.polled == list(range(20))
        assert net.stats.down_node_slots == 16

    def test_graph_swap_reawakens_everyone(self):
        net = RadioNetwork(path(2))
        sleeper = CountingProcess(0, period=QUIET_FOREVER)
        net.attach(sleeper)
        net.attach(CountingProcess(1))
        net.run(5)
        assert sleeper.polled == [0]
        net.graph = path(2)  # same shape, new topology object
        net.run(2)
        assert sleeper.polled == [0, 5]


class TestScheduleArithmetic:
    @pytest.mark.parametrize("level_classes", [1, 3])
    @pytest.mark.parametrize("with_acks", [True, False])
    def test_next_data_slot_matches_decode(self, level_classes, with_acks):
        slots = SlotStructure(
            decay_budget=4,
            level_classes=level_classes,
            with_acks=with_acks,
        )
        horizon = 3 * slots.phase_length
        for level in range(5):
            for slot in range(horizon):
                expected = next(
                    s
                    for s in range(slot, slot + horizon)
                    if slots.is_data_slot_for(s, level)
                )
                assert slots.next_data_slot_for(slot, level) == expected

    def test_lane_sleeps_forever_when_idle(self):
        slots = SlotStructure(decay_budget=2)
        lane = TransportLane(
            node_id=1,
            level=1,
            slots=slots,
            rng=RngFactory(3).for_node(1),
            channel=0,
        )
        assert lane.next_active_slot(0) == QUIET_FOREVER

    def test_lane_wakes_on_every_own_data_slot_while_loaded(self):
        # A loaded lane consumes one Decay coin per own data slot, so it
        # must be polled on each of them — and on nothing else.
        from repro.core.messages import DataMessage

        slots = SlotStructure(decay_budget=2, level_classes=3)
        lane = TransportLane(
            node_id=1,
            level=2,
            slots=slots,
            rng=RngFactory(3).for_node(1),
            channel=0,
        )
        lane.enqueue(
            DataMessage(
                msg_id=(1, 0),
                origin=1,
                hop_sender=1,
                hop_dest=0,
                dest_address=None,
                payload="x",
            )
        )
        for slot in range(2 * slots.phase_length):
            wake = lane.next_active_slot(slot)
            assert slots.is_data_slot_for(wake, 2)
            assert all(
                not slots.is_data_slot_for(s, 2) for s in range(slot, wake)
            )


class TestProtocolEquivalence:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_collection_identical_with_and_without_fast_path(self, seed):
        graph = layered_band(4, 3)
        tree = reference_bfs_tree(graph, 0)
        deepest = max(tree.nodes, key=lambda v: (tree.level[v], v))
        sources = {deepest: ["a", "b"], 5: ["c"]}
        fingerprints = []
        for idle in (True, False):
            network, processes, _ = build_collection_network(
                graph, tree, sources, seed=seed
            )
            network.idle_scheduling = idle
            network.run(2_000)
            stats = network.stats.channel(0)
            fingerprints.append(
                (
                    [m.msg_id for m in processes[tree.root].delivered],
                    [p.lane.backlog for p in processes.values()],
                    stats.transmissions,
                    stats.deliveries,
                    stats.collisions,
                )
            )
        assert fingerprints[0] == fingerprints[1]
        assert fingerprints[0][3] > 0  # the run did real work

    def test_reactive_submission_wakes_the_source(self):
        # run_collection drains, then a mid-run submit must restart the
        # pipeline even though every station had declared QUIET_FOREVER.
        graph = balanced_tree(2, 3)
        tree = reference_bfs_tree(graph, 0)
        network, processes, _ = build_collection_network(
            graph, tree, {14: ["first"]}, seed=9
        )
        root = processes[tree.root]
        network.run(5_000, until=lambda net: len(root.delivered) == 1)
        quiet_start = network.slot
        network.run(200)  # drained: everyone asleep
        processes[13].submit("second")
        network.run(
            5_000, until=lambda net: len(root.delivered) == 2
        )
        assert [m.payload for m in root.delivered] == ["first", "second"]
        assert network.slot > quiet_start


class TestProcessesView:
    def test_processes_is_a_readonly_live_view(self):
        net = RadioNetwork(path(3))
        net.attach(SilentProcess(0))
        view = net.processes
        assert isinstance(view, MappingProxyType)
        with pytest.raises(TypeError):
            view[1] = SilentProcess(1)
        # Live: later attachments appear without re-fetching...
        net.attach(SilentProcess(1))
        net.attach(SilentProcess(2))
        assert set(view) == {0, 1, 2}
        # ...because the proxy wraps the engine's own dict, not a copy.
        assert view == net._processes

    def test_run_until_done_uses_is_done(self):
        class DoneAfter(Process):
            def is_done(self):
                return True

        net = RadioNetwork(path(2))
        net.attach_all(DoneAfter)
        assert net.run_until_done(10) == 0
