"""Unit tests for the deterministic RNG plumbing."""

from repro.rng import RngFactory, child_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_key_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_part_boundaries_matter(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    def test_range(self):
        seed = derive_seed(123, "x")
        assert 0 <= seed < 2**64


class TestChildRng:
    def test_same_key_same_stream(self):
        a = child_rng(5, "node", 3)
        b = child_rng(5, "node", 3)
        assert [a.random() for _ in range(10)] == [
            b.random() for _ in range(10)
        ]

    def test_different_keys_differ(self):
        a = child_rng(5, "node", 3)
        b = child_rng(5, "node", 4)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestRngFactory:
    def test_for_node_reproducible(self):
        f = RngFactory(9)
        assert f.for_node(1).random() == RngFactory(9).for_node(1).random()

    def test_named_and_node_streams_independent(self):
        f = RngFactory(9)
        assert f.named("x").random() != f.for_node(0).random()

    def test_spawn_changes_streams(self):
        f = RngFactory(9)
        assert f.spawn(0).for_node(1).random() != f.for_node(1).random()
        assert f.spawn(0).seed != f.spawn(1).seed

    def test_replication_seeds_distinct(self):
        f = RngFactory(3)
        seeds = list(f.replication_seeds(50))
        assert len(set(seeds)) == 50

    def test_replication_seeds_reproducible(self):
        assert list(RngFactory(3).replication_seeds(5)) == list(
            RngFactory(3).replication_seeds(5)
        )

    def test_repeated_requests_give_equal_but_fresh_streams(self):
        f = RngFactory(11)
        a = f.for_node(2)
        a.random()  # advance one stream
        b = f.for_node(2)  # fresh object, original seed
        assert b.random() == RngFactory(11).for_node(2).random()
