"""Unit tests for the deterministic RNG plumbing."""

from repro.rng import RngFactory, child_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_key_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_part_boundaries_matter(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    def test_range(self):
        seed = derive_seed(123, "x")
        assert 0 <= seed < 2**64


class TestChildRng:
    def test_same_key_same_stream(self):
        a = child_rng(5, "node", 3)
        b = child_rng(5, "node", 3)
        assert [a.random() for _ in range(10)] == [
            b.random() for _ in range(10)
        ]

    def test_different_keys_differ(self):
        a = child_rng(5, "node", 3)
        b = child_rng(5, "node", 4)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestRngFactory:
    def test_for_node_reproducible(self):
        f = RngFactory(9)
        assert f.for_node(1).random() == RngFactory(9).for_node(1).random()

    def test_named_and_node_streams_independent(self):
        f = RngFactory(9)
        assert f.named("x").random() != f.for_node(0).random()

    def test_spawn_changes_streams(self):
        f = RngFactory(9)
        assert f.spawn(0).for_node(1).random() != f.for_node(1).random()
        assert f.spawn(0).seed != f.spawn(1).seed

    def test_replication_seeds_distinct(self):
        f = RngFactory(3)
        seeds = list(f.replication_seeds(50))
        assert len(set(seeds)) == 50

    def test_replication_seeds_reproducible(self):
        assert list(RngFactory(3).replication_seeds(5)) == list(
            RngFactory(3).replication_seeds(5)
        )

    def test_repeated_requests_give_equal_but_fresh_streams(self):
        f = RngFactory(11)
        a = f.for_node(2)
        a.random()  # advance one stream
        b = f.for_node(2)  # fresh object, original seed
        assert b.random() == RngFactory(11).for_node(2).random()


class TestNpRng:
    def test_deterministic(self):
        from repro.rng import np_rng

        a = np_rng(7, "vector", "decay").random(4)
        b = np_rng(7, "vector", "decay").random(4)
        assert list(a) == list(b)

    def test_key_sensitivity(self):
        from repro.rng import np_rng

        a = np_rng(7, "vector", "decay").random()
        b = np_rng(7, "vector", "ack").random()
        c = np_rng(8, "vector", "decay").random()
        assert len({a, b, c}) == 3

    def test_shares_derivation_with_child_rng(self):
        # Both stream families hang off the same sha256 derivation, so
        # the namespace of keys is shared (and collision-free) across
        # the scalar and vector engines.
        from repro.rng import derive_seed, np_rng

        seed = derive_seed(3, "x", 1)
        import numpy as np

        assert (
            np_rng(3, "x", 1).random()
            == np.random.default_rng(seed).random()
        )


class TestContentKey:
    def test_canonical_across_dict_order(self):
        from repro.rng import content_key

        assert content_key({"a": 1, "b": 2}) == content_key(
            {"b": 2, "a": 1}
        )

    def test_sensitive_to_values(self):
        from repro.rng import content_key

        assert content_key({"a": 1}) != content_key({"a": 2})
        assert content_key([1, 2]) != content_key([2, 1])

    def test_stable_hex_digest(self):
        from repro.rng import content_key

        key = content_key({"spec": {"k": 4}, "version": "1.1.0"})
        assert len(key) == 64
        assert key == content_key({"version": "1.1.0", "spec": {"k": 4}})
