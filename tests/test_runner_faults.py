"""Fault tolerance of the executor: crashes, hangs, retries, resumption.

Every scenario here injects a *deterministic* failure into a small task
grid and asserts the executor's contract: transient failures retry and
succeed, persistent failures are quarantined (not fatal) and itemized,
crashed workers are rebuilt and bisected down to the poison task, hangs
are killed by the watchdog, interrupted sweeps resume from their
checkpoint, and corrupt cache entries are detected, preserved for
post-mortem and recomputed.

The task functions are top-level so they pickle to pool workers; their
failure behavior is keyed off case parameters and marker files in a
scratch directory (shipped through the case, which keeps the task spec
pure and the failures first-attempt-only where needed).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.runner import (
    FaultPolicy,
    QuarantineRecord,
    ResultCache,
    SweepCheckpoint,
    TaskExecutionError,
    read_quarantine,
    read_telemetry,
    run_tasks,
    task_grid,
)
from repro.runner.cache import payload_digest
from repro.runner.chaos import run_chaos
from repro.runner.telemetry import RunTelemetry


def _grid(scratch: Path, n: int = 4, exp_id: str = "EF"):
    cases = [{"scratch": str(scratch), "idx": i} for i in range(n)]
    return task_grid(exp_id, cases, 1, seed=11)


def _value(spec) -> dict:
    return {"value": spec.seed % 97, "idx": spec.params["idx"]}


def _marker(spec, kind: str) -> Path:
    scratch = Path(spec.params["scratch"])
    return scratch / f"{kind}-{spec.params['idx']}"


# -- top-level task functions (picklable to pool workers) --------------


def steady_metric(spec):
    return _value(spec)


def flaky_metric(spec):
    """Fails the first attempt of every task, then succeeds."""
    marker = _marker(spec, "flaky")
    if not marker.exists():
        marker.touch()
        raise RuntimeError("injected transient failure")
    return _value(spec)


def poison_metric(spec):
    """Task idx=1 always raises; everything else succeeds."""
    if spec.params["idx"] == 1:
        raise ValueError("permanently broken task")
    return _value(spec)


def crasher_metric(spec):
    """Task idx=1 kills its worker process outright, every attempt."""
    if spec.params["idx"] == 1:
        os._exit(3)
    return _value(spec)


def hang_metric(spec):
    """Task idx=1 sleeps far past any watchdog budget."""
    if spec.params["idx"] == 1:
        time.sleep(60)
    return _value(spec)


def interrupting_metric(spec):
    """Simulates Ctrl-C landing while the third task runs."""
    if spec.params["idx"] == 2:
        raise KeyboardInterrupt
    return _value(spec)


# -- policy ------------------------------------------------------------


class TestFaultPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPolicy(timeout=0)
        with pytest.raises(ConfigurationError):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            FaultPolicy(max_quarantine_fraction=1.5)
        with pytest.raises(ConfigurationError):
            FaultPolicy(rebuild_limit=0)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = FaultPolicy(backoff_base=0.1, backoff_cap=1.0, jitter=0.5)
        first = policy.backoff_delay("key", 1)
        assert first == policy.backoff_delay("key", 1)
        assert first != policy.backoff_delay("other", 1)
        for attempt in range(1, 8):
            delay = policy.backoff_delay("key", attempt)
            assert 0.0 < delay <= 1.0 * 1.5

    def test_backoff_grows_exponentially(self):
        policy = FaultPolicy(backoff_base=0.1, backoff_cap=100.0, jitter=0.0)
        assert policy.backoff_delay("k", 2) == 2 * policy.backoff_delay("k", 1)

    def test_quarantine_record_round_trip(self):
        record = QuarantineRecord(
            spec={"exp_id": "EF"},
            key="abc",
            label="EF#0",
            category="crash",
            attempts=3,
            detail="worker died",
        )
        assert QuarantineRecord.from_record(record.to_record()) == record


# -- retries and quarantine --------------------------------------------


class TestRetries:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_flaky_tasks_retry_then_succeed(self, tmp_path, workers):
        tasks = _grid(tmp_path)
        policy = FaultPolicy(backoff_base=0.001, seed=3)
        report = run_tasks(
            tasks, flaky_metric, workers=workers, policy=policy
        )
        assert len(report.outcomes) == len(tasks)
        assert report.retries >= len(tasks)
        assert not report.quarantined
        clean = run_tasks(tasks, steady_metric)
        assert [o.metrics for o in report.outcomes] == [
            o.metrics for o in clean.outcomes
        ]

    @pytest.mark.parametrize("workers", [0, 2])
    def test_persistent_failure_is_quarantined(self, tmp_path, workers):
        tasks = _grid(tmp_path)
        policy = FaultPolicy(backoff_base=0.001, max_retries=1)
        report = run_tasks(
            tasks, poison_metric, workers=workers, policy=policy
        )
        assert len(report.outcomes) == len(tasks) - 1
        assert len(report.quarantined) == 1
        record = report.quarantined[0]
        assert record.category == "error"
        assert record.attempts == 2  # initial run + one retry
        assert "permanently broken" in record.detail
        assert {o.spec.params["idx"] for o in report.outcomes} == {0, 2, 3}

    def test_no_quarantine_aborts_with_label(self, tmp_path):
        tasks = _grid(tmp_path)
        policy = FaultPolicy(
            backoff_base=0.001, max_retries=0, quarantine=False
        )
        with pytest.raises(TaskExecutionError, match=r"idx=1"):
            run_tasks(tasks, poison_metric, policy=policy)

    def test_threshold_aborts_on_systemic_failure(self, tmp_path):
        tasks = _grid(tmp_path)

        policy = FaultPolicy(
            backoff_base=0.001, max_retries=0, max_quarantine_fraction=0.5
        )
        with pytest.raises(TaskExecutionError, match="quarantined"):
            run_tasks(
                tasks,
                lambda spec: (_ for _ in ()).throw(ValueError("boom")),
                policy=policy,
            )

    def test_quarantine_recorded_in_telemetry(self, tmp_path):
        tasks = _grid(tmp_path / "scratch")
        run_dir = tmp_path / "run"
        policy = FaultPolicy(backoff_base=0.001, max_retries=0)
        report = run_tasks(
            tasks, poison_metric, telemetry=run_dir, policy=policy
        )
        records = read_quarantine(run_dir)
        assert len(records) == 1
        assert records[0]["category"] == "error"
        assert records[0]["label"] == report.quarantined[0].label
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["quarantined"] == 1
        assert manifest["failures"]["quarantined"] == 1
        assert manifest["status"] == "finished"


# -- crashes and hangs (process pool required) -------------------------


class TestCrashRecovery:
    def test_worker_crash_is_bisected_and_quarantined(self, tmp_path):
        tasks = _grid(tmp_path, n=6)
        policy = FaultPolicy(backoff_base=0.001, max_retries=1)
        report = run_tasks(
            tasks, crasher_metric, workers=2, chunk_size=3, policy=policy
        )
        assert len(report.outcomes) == len(tasks) - 1
        assert report.pool_rebuilds >= 1
        assert len(report.quarantined) == 1
        record = report.quarantined[0]
        assert record.category == "crash"
        assert "worker process died" in record.detail
        # Every innocent sibling of the crashing chunk still completed.
        assert {o.spec.params["idx"] for o in report.outcomes} == {
            0, 2, 3, 4, 5,
        }

    def test_hang_is_killed_and_quarantined_as_timeout(self, tmp_path):
        tasks = _grid(tmp_path, n=4)
        policy = FaultPolicy(timeout=1.0, backoff_base=0.001)
        started = time.perf_counter()
        report = run_tasks(
            tasks, hang_metric, workers=2, chunk_size=1, policy=policy
        )
        wall = time.perf_counter() - started
        assert wall < 30  # the 60s sleep never ran to completion
        assert report.timeouts >= 1
        assert len(report.quarantined) == 1
        assert report.quarantined[0].category == "timeout"
        assert {o.spec.params["idx"] for o in report.outcomes} == {0, 2, 3}

    def test_pool_construction_failure_degrades_to_inline(
        self, tmp_path, monkeypatch
    ):
        import repro.runner.executor as executor_module

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no processes for you")

        monkeypatch.setattr(
            executor_module, "ProcessPoolExecutor", ExplodingPool
        )
        tasks = _grid(tmp_path)
        report = run_tasks(tasks, steady_metric, workers=2)
        assert report.fallback_inline
        assert len(report.outcomes) == len(tasks)
        clean = run_tasks(tasks, steady_metric)
        assert [o.metrics for o in report.outcomes] == [
            o.metrics for o in clean.outcomes
        ]


# -- checkpointing and interruption ------------------------------------


class TestCheckpoint:
    def test_interrupt_writes_checkpoint_and_telemetry(self, tmp_path):
        tasks = _grid(tmp_path / "scratch")
        run_dir = tmp_path / "run"
        ckpt = tmp_path / "sweep.ckpt"
        with pytest.raises(KeyboardInterrupt):
            run_tasks(
                tasks,
                interrupting_metric,
                telemetry=run_dir,
                checkpoint=ckpt,
            )
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["status"] == "interrupted"
        assert manifest["executed"] == 2
        completed, quarantined = SweepCheckpoint(ckpt).load()
        assert len(completed) == 2
        assert not quarantined

    def test_resume_skips_completed_tasks(self, tmp_path):
        tasks = _grid(tmp_path / "scratch")
        ckpt = tmp_path / "sweep.ckpt"
        with pytest.raises(KeyboardInterrupt):
            run_tasks(tasks, interrupting_metric, checkpoint=ckpt)
        report = run_tasks(tasks, steady_metric, checkpoint=ckpt)
        assert report.resumed == 2
        assert report.executed == 2
        assert len(report.outcomes) == len(tasks)
        sources = [o.source for o in report.outcomes]
        assert sources == ["checkpoint", "checkpoint", "fresh", "fresh"]
        clean = run_tasks(tasks, steady_metric)
        assert [o.metrics for o in report.outcomes] == [
            o.metrics for o in clean.outcomes
        ]

    def test_checkpointed_quarantine_is_not_rerun(self, tmp_path):
        tasks = _grid(tmp_path / "scratch")
        ckpt = tmp_path / "sweep.ckpt"
        policy = FaultPolicy(backoff_base=0.001, max_retries=0)
        first = run_tasks(
            tasks, poison_metric, checkpoint=ckpt, policy=policy
        )
        assert len(first.quarantined) == 1
        calls = tmp_path / "calls"
        calls.mkdir()

        second = run_tasks(tasks, steady_metric, checkpoint=ckpt)
        assert second.executed == 0
        assert second.resumed == len(tasks) - 1
        assert len(second.quarantined) == 1
        assert second.quarantined[0].label == first.quarantined[0].label

    def test_torn_final_checkpoint_line_is_tolerated(self, tmp_path):
        ckpt_path = tmp_path / "sweep.ckpt"
        ckpt = SweepCheckpoint(ckpt_path)
        ckpt.append_outcome("k1", {"metrics": {"v": 1}})
        ckpt.append_outcome("k2", {"metrics": {"v": 2}})
        ckpt.close()
        with ckpt_path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "outcome", "key": "k3", "rec')
        completed, _ = SweepCheckpoint(ckpt_path).load()
        assert sorted(completed) == ["k1", "k2"]

    def test_corrupt_interior_checkpoint_line_raises(self, tmp_path):
        ckpt_path = tmp_path / "sweep.ckpt"
        ckpt_path.write_text(
            '{"kind": "outcome", "key": "k1", "record": {}}\n'
            "garbage here\n"
            '{"kind": "outcome", "key": "k2", "record": {}}\n'
        )
        with pytest.raises(ValueError, match="line 2"):
            SweepCheckpoint(ckpt_path).load()


# -- cache integrity ---------------------------------------------------


class TestCacheIntegrity:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_corrupt_entry_is_preserved_and_recomputed(
        self, tmp_path, workers
    ):
        tasks = _grid(tmp_path / "scratch")
        cache = ResultCache(tmp_path / "cache")
        first = run_tasks(tasks, steady_metric, cache=cache)
        key = first.outcomes[0].key
        path = cache._path(key)
        path.write_text("{torn", encoding="utf-8")

        report = run_tasks(
            tasks, steady_metric, workers=workers, cache=cache
        )
        assert report.corrupt_cache_entries == 1
        assert report.executed == 1
        assert report.cache_hits == len(tasks) - 1
        assert len(list(cache.corrupt_entries())) == 1
        assert report.outcomes[0].metrics == first.outcomes[0].metrics

    def test_tampered_payload_fails_integrity_check(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a" * 64, {"metrics": {"v": 1}, "wall_time": 0.5})
        path = cache._path("a" * 64)
        stored = json.loads(path.read_text())
        stored["metrics"]["v"] = 2  # tamper; sha256 now stale
        path.write_text(json.dumps(stored, sort_keys=True))
        assert cache.get("a" * 64) is None
        assert cache.corrupt == 1
        assert len(list(cache.corrupt_entries())) == 1

    def test_legacy_entry_without_digest_stays_readable(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache._path("b" * 64)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"metrics": {"v": 7}}))
        assert cache.get("b" * 64) == {"metrics": {"v": 7}}
        assert cache.corrupt == 0

    def test_round_trip_preserves_digest_validity(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = {"metrics": {"x": 0.1 + 0.2}, "wall_time": 1e-9}
        cache.put("c" * 64, record)
        assert cache.get("c" * 64) == record
        assert cache.corrupt == 0

    def test_corrupt_sidecar_not_listed_as_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("d" * 64, {"metrics": {}})
        path = cache._path("e" * 64)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{bad")
        assert cache.get("e" * 64) is None
        assert list(cache.keys()) == ["d" * 64]
        assert len(cache) == 1

    def test_payload_digest_is_canonical(self):
        assert payload_digest({"b": 1, "a": 2}) == payload_digest(
            {"a": 2, "b": 1}
        )


# -- telemetry hardening -----------------------------------------------


class TestTelemetryHardening:
    def test_torn_final_telemetry_line_is_tolerated(self, tmp_path):
        telemetry = RunTelemetry(tmp_path)
        telemetry.start(exp_id="EF", version="x", total_tasks=2, workers=0)
        telemetry.record_task({"exp_id": "EF"}, {"v": 1}, 0.1, False, "k1")
        telemetry.record_task({"exp_id": "EF"}, {"v": 2}, 0.1, False, "k2")
        telemetry.finish(executed=2, cache_hits=0)
        with (tmp_path / "telemetry.jsonl").open("a") as handle:
            handle.write('{"sequence": 2, "spec"')
        records = read_telemetry(tmp_path)
        assert [r["metrics"]["v"] for r in records] == [1, 2]

    def test_corrupt_interior_telemetry_line_raises(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text('{"sequence": 0}\nnot json\n{"sequence": 1}\n')
        with pytest.raises(ValueError, match="telemetry.jsonl:2"):
            read_telemetry(tmp_path)

    def test_empty_quarantine_reads_as_empty(self, tmp_path):
        assert read_quarantine(tmp_path) == []


# -- the chaos harness, miniaturized -----------------------------------


class TestChaosHarness:
    def test_chaos_scenario_passes_end_to_end(self, tmp_path):
        report = run_chaos(
            seed=5,
            workers=2,
            replications=3,
            timeout=1.5,
            base_dir=tmp_path / "chaos",
            keep=True,
            preseed_count=2,
            corrupt_count=1,
            hang_seconds=30.0,
        )
        failed = [v for v in report.verdicts if not v.passed]
        assert report.ok, f"chaos verdicts failed: {failed}"
        assert report.tasks == 6
        # The working directory survives for post-mortems when kept.
        assert (tmp_path / "chaos" / "inject" / "plan.json").exists()
        assert (tmp_path / "chaos" / "chaos-run" / "quarantine.jsonl").exists()

    def test_chaos_rejects_inline_workers(self):
        with pytest.raises(ConfigurationError, match="workers"):
            run_chaos(workers=0)
