"""Tests for the baseline protocols (experiment E10/E12 machinery)."""

import random

import pytest

from repro.baselines import (
    AlohaSession,
    aloha_session_factory,
    aloha_success_probability,
    naive_broadcast_reference_slots,
    run_naive_broadcast,
    run_sequential_p2p,
    run_single_flood,
    run_tdma_collection,
    sequential_reference_slots,
    tdma_reference_slots,
)
from repro.errors import ConfigurationError
from repro.graphs import grid, path, random_geometric, reference_bfs_tree, star


class TestTdma:
    def test_all_messages_collected(self):
        graph = grid(3, 3)
        tree = reference_bfs_tree(graph, 0)
        sources = {n: [f"m{n}"] for n in graph.nodes if n != 0}
        result = run_tdma_collection(graph, tree, sources)
        assert sorted(m.payload for m in result.delivered) == sorted(
            f"m{n}" for n in graph.nodes if n != 0
        )

    def test_collision_free(self):
        from repro.radio import EventTrace, RadioNetwork

        graph = star(8)
        tree = reference_bfs_tree(graph, 0)
        sources = {n: ["x"] for n in range(1, 8)}
        # re-run with a trace by rebuilding manually
        from repro.baselines.tdma import TdmaCollectionProcess
        from repro.core.tree import tree_info_from_bfs_tree

        infos = tree_info_from_bfs_tree(tree)
        trace = EventTrace()
        net = RadioNetwork(graph, trace=trace)
        procs = {}
        for rank, node in enumerate(graph.nodes):
            proc = TdmaCollectionProcess(
                infos[node], rank, graph.num_nodes, sources.get(node, ())
            )
            procs[node] = proc
            net.attach(proc)
        net.run(
            5_000, until=lambda n: len(procs[0].delivered) >= 7
        )
        assert len(trace.collisions) == 0

    def test_unknown_source(self):
        graph = path(3)
        with pytest.raises(ConfigurationError):
            run_tdma_collection(
                graph, reference_bfs_tree(graph, 0), {99: ["x"]}
            )

    def test_cost_scales_with_n(self):
        """TDMA pays ~n slots per frame: a path of 2n nodes is ~2× slower
        per message-hop than a path of n."""
        slots = {}
        for n in (8, 16):
            graph = path(n)
            tree = reference_bfs_tree(graph, 0)
            result = run_tdma_collection(graph, tree, {n - 1: ["m"]})
            slots[n] = result.slots
        # One message, D hops, one hop per frame: ≈ n·(n−1) slots.
        assert slots[16] > 3 * slots[8]

    def test_reference_formula(self):
        assert tdma_reference_slots(5, 3, 10) == 80.0


class TestSequential:
    def test_delivery_and_hop_accounting(self):
        graph = grid(3, 3)
        tree = reference_bfs_tree(graph, 0)
        tree.assign_dfs_intervals()
        batch = [(8, 0, "a"), (6, 2, "b"), (4, 4, "self")]
        result = run_sequential_p2p(graph, tree, batch)
        assert result.delivered == 3
        assert result.slots == result.hop_total
        assert result.hop_total == sequential_reference_slots(batch, tree)

    def test_requires_prepared_tree(self):
        graph = path(3)
        tree = reference_bfs_tree(graph, 0)
        with pytest.raises(ConfigurationError):
            run_sequential_p2p(graph, tree, [(0, 2, "x")])

    def test_cost_is_sum_of_paths(self):
        graph = path(10)
        tree = reference_bfs_tree(graph, 0)
        tree.assign_dfs_intervals()
        batch = [(9, 0, i) for i in range(4)]
        result = run_sequential_p2p(graph, tree, batch)
        assert result.slots == 4 * 9  # no pipelining: k×D


class TestNaiveBroadcast:
    def test_single_flood_informs_everyone(self):
        graph = random_geometric(15, 0.45, random.Random(3))
        result = run_single_flood(graph, 0, "hello", seed=4)
        assert result.informed == graph.num_nodes

    def test_sequential_floods_accumulate(self):
        graph = path(6)
        result = run_naive_broadcast(graph, 0, k=3, seed=2)
        assert result.messages == 3
        assert result.slots == sum(result.per_message_slots)
        assert all(s > 0 for s in result.per_message_slots)

    def test_zero_messages(self):
        result = run_naive_broadcast(path(3), 0, k=0, seed=0)
        assert result.slots == 0

    def test_reference_formula_scales_with_k_times_d(self):
        assert naive_broadcast_reference_slots(
            10, 8, 4, 32
        ) == pytest.approx(2 * naive_broadcast_reference_slots(5, 8, 4, 32))


class TestAloha:
    def test_session_interface(self):
        rng = random.Random(0)
        session = AlohaSession(1.0, rng)
        assert session.should_transmit() is True
        session.kill()
        assert session.should_transmit() is False
        assert not session.alive

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            AlohaSession(0.0, random.Random(0))
        with pytest.raises(ConfigurationError):
            AlohaSession(1.5, random.Random(0))

    def test_success_formula_against_simulation(self):
        m, p, window = 4, 0.25, 6
        predicted = aloha_success_probability(m, p, window)
        rng = random.Random(8)
        trials = 30_000
        hits = 0
        for _ in range(trials):
            for _slot in range(window):
                transmitting = sum(1 for _ in range(m) if rng.random() < p)
                if transmitting == 1:
                    hits += 1
                    break
        assert hits / trials == pytest.approx(predicted, rel=0.03)

    def test_aloha_plugs_into_collection(self):
        """End-to-end: collection works (slower) with ALOHA sessions."""
        from repro.core import SlotStructure, decay_budget
        from repro.core.collection import CollectionProcess
        from repro.core.tree import tree_info_from_bfs_tree
        from repro.radio import RadioNetwork
        from repro.rng import RngFactory

        graph = star(6)
        tree = reference_bfs_tree(graph, 0)
        infos = tree_info_from_bfs_tree(tree)
        factory = RngFactory(11)
        slots = SlotStructure(decay_budget(graph.max_degree()), 3, True)
        net = RadioNetwork(graph, num_channels=1)
        procs = {}
        for node in graph.nodes:
            rng = factory.for_node(node)
            proc = CollectionProcess(
                infos[node],
                slots,
                rng,
                initial_payloads=[f"m{node}"] if node != 0 else [],
                channel=0,
            )
            proc.lane._session_factory = aloha_session_factory(
                1.0 / graph.max_degree(), rng
            )
            procs[node] = proc
            net.attach(proc)
        net.run(
            500_000,
            until=lambda n: len(procs[0].delivered) >= 5,
        )
        assert len(procs[0].delivered) == 5

    def test_decay_beats_fixed_aloha_for_small_contender_sets(self):
        """The motivating comparison: with m ≪ Δ, ALOHA(1/Δ) underperforms
        Decay's ≥ 1/2 guarantee over the same window."""
        from repro.core import decay_budget, success_probability_exact

        max_degree = 64
        window = decay_budget(max_degree)
        m = 2
        aloha = aloha_success_probability(m, 1.0 / max_degree, window)
        decay = float(success_probability_exact(m, window))
        assert decay >= 0.5
        assert aloha < 0.4


class TestSpatialTdma:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path(12),
            lambda: grid(4, 4),
            lambda: star(9),
            lambda: random_geometric(20, 0.4, random.Random(3)),
        ],
        ids=["path", "grid", "star", "rgg"],
    )
    def test_coloring_is_valid_distance2(self, graph_factory):
        from repro.baselines import distance2_coloring, verify_distance2_coloring

        graph = graph_factory()
        colors = distance2_coloring(graph)
        assert verify_distance2_coloring(graph, colors)
        assert max(colors.values()) + 1 <= graph.max_degree() ** 2 + 1

    def test_collection_delivers_everything(self):
        from repro.baselines import run_spatial_tdma_collection

        graph = grid(4, 4)
        tree = reference_bfs_tree(graph, 0)
        sources = {n: [f"m{n}"] for n in graph.nodes if n != 0}
        result = run_spatial_tdma_collection(graph, tree, sources)
        assert sorted(m.payload for m in result.delivered) == sorted(
            f"m{n}" for n in graph.nodes if n != 0
        )

    def test_collision_free(self):
        from repro.baselines.spatial_tdma import distance2_coloring
        from repro.baselines.tdma import TdmaCollectionProcess
        from repro.core.tree import tree_info_from_bfs_tree
        from repro.radio import EventTrace, RadioNetwork

        graph = random_geometric(18, 0.45, random.Random(6))
        tree = reference_bfs_tree(graph, 0)
        colors = distance2_coloring(graph)
        frame = max(colors.values()) + 1
        infos = tree_info_from_bfs_tree(tree)
        trace = EventTrace()
        net = RadioNetwork(graph, trace=trace)
        procs = {}
        for node in graph.nodes:
            proc = TdmaCollectionProcess(
                infos[node],
                colors[node],
                frame,
                ["x"] if node != 0 else (),
            )
            procs[node] = proc
            net.attach(proc)
        net.run(
            20_000,
            until=lambda n: len(procs[0].delivered)
            >= graph.num_nodes - 1,
        )
        assert len(trace.collisions) == 0

    def test_beats_plain_tdma_on_deep_sparse_networks(self):
        """Spatial reuse: frame O(Δ²) « O(n) on a path, so it forwards
        in parallel and wins big."""
        from repro.baselines import (
            run_spatial_tdma_collection,
            run_tdma_collection,
        )

        graph = path(32)
        tree = reference_bfs_tree(graph, 0)
        sources = {31: [f"m{i}" for i in range(6)]}
        plain = run_tdma_collection(graph, tree, sources)
        spatial = run_spatial_tdma_collection(graph, tree, sources)
        assert len(spatial.delivered) == 6
        assert spatial.slots * 3 < plain.slots
        assert spatial.frame_length <= 5  # Δ=2 → tiny frames

    def test_unknown_source(self):
        from repro.baselines import run_spatial_tdma_collection

        graph = path(4)
        with pytest.raises(ConfigurationError):
            run_spatial_tdma_collection(
                graph, reference_bfs_tree(graph, 0), {99: ["x"]}
            )

    def test_reference_formula(self):
        from repro.baselines import spatial_tdma_reference_slots

        assert spatial_tdma_reference_slots(5, 3, 7) == 56.0
