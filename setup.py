"""Legacy setup shim (the environment's setuptools lacks wheel support).

All metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-build-isolation`` via the setup.py develop path.
"""

from setuptools import setup

setup()
